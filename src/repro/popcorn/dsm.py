"""Page-granularity distributed shared memory (DSM).

Popcorn Linux provides sequentially-consistent shared memory across
ISA-different machines as a first-class OS abstraction (Section 2). This
module models that protocol at page level: an MSI write-invalidate
protocol with a directory, where page payloads and control messages
travel over the (shared, fair-shared) Ethernet link model — so DSM
traffic from one migrating application slows down another's, as on the
real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.interconnect import Link
from repro.sim import Event, Simulator, Tracer

__all__ = ["PageState", "DSMStats", "DSM", "DSMError"]

#: Size of a protocol control message (invalidate / ack / request) in bytes.
CONTROL_MESSAGE_BYTES = 64


class DSMError(Exception):
    """Raised for protocol misuse (unknown node, etc.)."""


class PageState:
    """Per-node MSI state of a page."""

    MODIFIED = "M"
    SHARED = "S"
    INVALID = "I"


@dataclass
class DSMStats:
    """Protocol traffic counters."""

    local_hits: int = 0
    page_transfers: int = 0
    invalidations: int = 0
    control_messages: int = 0
    bytes_transferred: float = 0.0


@dataclass(slots=True)
class _PageEntry:
    """Directory entry: which node holds the page in which state."""

    states: dict[str, str] = field(default_factory=dict)

    def holders(self) -> list[str]:
        return [n for n, s in self.states.items() if s != PageState.INVALID]

    def has_holder(self) -> bool:
        """True if any node holds a valid (S/M) copy; avoids building
        the holder list on the migration fast path."""
        for state in self.states.values():
            if state != PageState.INVALID:
                return True
        return False

    def invalidate_all(self) -> None:
        states = self.states
        for node in states:
            states[node] = PageState.INVALID

    def owner(self) -> Optional[str]:
        for node, state in self.states.items():
            if state == PageState.MODIFIED:
                return node
        return None


class DSM:
    """A directory-based MSI DSM over a link model."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        page_size: int = 4096,
        tracer: Optional[Tracer] = None,
    ):
        if page_size <= 0 or page_size & (page_size - 1):
            raise DSMError(f"page size must be a power of two, got {page_size}")
        self.sim = sim
        self.link = link
        self.page_size = page_size
        self.tracer = tracer or Tracer(enabled=False)
        self.nodes: set[str] = set()
        self.directory: dict[int, _PageEntry] = {}
        self.stats = DSMStats()

    # -- topology ------------------------------------------------------------
    def add_node(self, name: str) -> None:
        if name in self.nodes:
            raise DSMError(f"node {name!r} already registered")
        self.nodes.add(name)

    def _check_node(self, node: str) -> None:
        if node not in self.nodes:
            raise DSMError(f"unknown DSM node {node!r}")

    def page_of(self, addr: int) -> int:
        return addr & ~(self.page_size - 1)

    def page_state(self, node: str, addr: int) -> str:
        self._check_node(node)
        entry = self.directory.get(self.page_of(addr))
        if entry is None:
            return PageState.INVALID
        return entry.states.get(node, PageState.INVALID)

    # -- protocol operations ----------------------------------------------------
    def read(self, node: str, addr: int) -> Event:
        """Gain read access to the page holding ``addr``.

        Local S/M copies hit immediately; otherwise the page is fetched
        from its owner (downgrading an M copy to S).
        """
        self._check_node(node)
        page = self.page_of(addr)
        entry = self.directory.setdefault(page, _PageEntry())
        state = entry.states.get(node, PageState.INVALID)
        done = self.sim.event()

        if state in (PageState.SHARED, PageState.MODIFIED):
            self.stats.local_hits += 1
            done.succeed(page)
            return done

        holders = entry.holders()
        if not holders:
            # First touch anywhere: zero-fill locally, no traffic.
            entry.states[node] = PageState.SHARED
            self.stats.local_hits += 1
            done.succeed(page)
            return done

        def protocol():
            # Request to the directory/owner, then the page payload back.
            self.stats.control_messages += 1
            self.stats.bytes_transferred += CONTROL_MESSAGE_BYTES
            yield self.link.transfer(CONTROL_MESSAGE_BYTES, tag=("dsm-req", node, page))
            owner = entry.owner()
            if owner is not None:
                entry.states[owner] = PageState.SHARED  # writeback/downgrade
            self.stats.page_transfers += 1
            self.stats.bytes_transferred += self.page_size
            yield self.link.transfer(self.page_size, tag=("dsm-page", node, page))
            entry.states[node] = PageState.SHARED
            self.tracer.record(
                "dsm", f"{node}: read-fetch page {page:#x}", node=node, page=page
            )
            done.succeed(page)

        self.sim.spawn(protocol())
        return done

    def write(self, node: str, addr: int) -> Event:
        """Gain exclusive (M) access to the page holding ``addr``.

        Invalidates every other copy (one control round per holder,
        issued concurrently) and fetches the payload if ``node`` has no
        valid copy.
        """
        self._check_node(node)
        page = self.page_of(addr)
        entry = self.directory.setdefault(page, _PageEntry())
        state = entry.states.get(node, PageState.INVALID)
        done = self.sim.event()

        others = [n for n in entry.holders() if n != node]
        if state == PageState.MODIFIED:
            self.stats.local_hits += 1
            done.succeed(page)
            return done
        if state == PageState.SHARED and not others:
            # Silent S->M upgrade: sole holder.
            entry.states[node] = PageState.MODIFIED
            self.stats.local_hits += 1
            done.succeed(page)
            return done
        if not others and state == PageState.INVALID and not entry.holders():
            # First touch anywhere.
            entry.states[node] = PageState.MODIFIED
            self.stats.local_hits += 1
            done.succeed(page)
            return done

        need_payload = state == PageState.INVALID

        def protocol():
            # Invalidations to all other holders, in parallel.
            invalidation_acks = []
            for other in others:
                self.stats.invalidations += 1
                self.stats.control_messages += 2  # invalidate + ack
                self.stats.bytes_transferred += 2 * CONTROL_MESSAGE_BYTES
                invalidation_acks.append(
                    self.link.transfer(
                        2 * CONTROL_MESSAGE_BYTES, tag=("dsm-inv", other, page)
                    )
                )
            if invalidation_acks:
                yield self.sim.all_of(invalidation_acks)
            if need_payload:
                self.stats.page_transfers += 1
                self.stats.bytes_transferred += self.page_size
                yield self.link.transfer(self.page_size, tag=("dsm-page", node, page))
            for other in others:
                entry.states[other] = PageState.INVALID
            entry.states[node] = PageState.MODIFIED
            self.tracer.record(
                "dsm", f"{node}: write-own page {page:#x}", node=node, page=page
            )
            done.succeed(page)

        self.sim.spawn(protocol())
        return done

    def seed_pages(self, node: str, addrs: list[int]) -> None:
        """Mark pages as locally modified at ``node`` with no traffic.

        Models memory a process allocated and wrote before the DSM ever
        got involved (its pre-migration working set).
        """
        self._check_node(node)
        directory = self.directory
        mask = ~(self.page_size - 1)
        for addr in addrs:
            page = addr & mask
            entry = directory.get(page)
            if entry is None:
                directory[page] = _PageEntry(states={node: PageState.MODIFIED})
                continue
            entry.invalidate_all()
            entry.states[node] = PageState.MODIFIED

    def migrate_pages(self, src: str, dst: str, addrs: list[int]) -> Event:
        """Eagerly move a working set from ``src`` to ``dst`` (M at dst).

        Used when a thread migrates: its dirty pages are pushed up front
        in one batched wire transfer (as Popcorn's migration path does)
        instead of being faulted over one by one.
        """
        self._check_node(src)
        self._check_node(dst)
        mask = ~(self.page_size - 1)
        pages = sorted({a & mask for a in addrs})
        done = self.sim.event()

        directory = self.directory
        to_transfer: list[int] = []
        to_claim: list[int] = []
        for page in pages:
            entry = directory.get(page)
            if entry is None:
                directory[page] = _PageEntry()
                to_claim.append(page)
                continue
            if entry.states.get(dst) == PageState.MODIFIED:
                continue
            to_claim.append(page)
            if entry.has_holder():
                to_transfer.append(page)

        def finish() -> None:
            for page in to_claim:
                entry = directory[page]
                entry.invalidate_all()
                entry.states[dst] = PageState.MODIFIED
            self.tracer.record(
                "dsm",
                f"{src} -> {dst}: migrated {len(to_claim)} pages "
                f"({len(to_transfer)} over the wire)",
                src=src,
                dst=dst,
                pages=len(to_claim),
            )
            done.succeed(len(pages))

        if to_transfer:
            nbytes = len(to_transfer) * self.page_size
            self.stats.page_transfers += len(to_transfer)
            self.stats.bytes_transferred += nbytes
            transfer = self.link.transfer(nbytes, tag=("dsm-migrate", dst, len(to_transfer)))
            transfer.callbacks.append(lambda _ev: finish())
        else:
            finish()
        return done
