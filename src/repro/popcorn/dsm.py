"""Page-granularity distributed shared memory (DSM).

Popcorn Linux provides sequentially-consistent shared memory across
ISA-different machines as a first-class OS abstraction (Section 2). This
module models that protocol at page level: an MSI write-invalidate
protocol with a directory, where page payloads and control messages
travel over the (shared, fair-shared) Ethernet link model — so DSM
traffic from one migrating application slows down another's, as on the
real testbed.

Two directory representations coexist:

* per-page :class:`_PageEntry` rows in ``directory`` — authoritative
  for every page that has been touched individually (``read`` /
  ``write`` faults);
* uniform *spans* — contiguous page ranges whose every page shares one
  MSI state map. Working-set operations (:meth:`DSM.seed_pages`,
  :meth:`DSM.migrate_pages` over a contiguous range) create and move
  spans wholesale, so migrating an N-page working set costs O(spans)
  directory work and one link busy-period instead of N per-page
  entries and N event chains. An individual fault inside a span
  materializes just that page back into ``directory``.

The two layers are disjoint by construction: a page is either in
``directory`` or covered by exactly one span (or untouched). The
batched span path is *semantically identical* to running the per-page
protocol — :meth:`DSM.migrate_pages_reference` keeps the page-by-page
protocol alive as the executable specification, and a hypothesis
property test pins the batched path to it on stats, states, and
completion times.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.hardware.interconnect import Link
from repro.sim import Event, Simulator, Tracer

__all__ = ["PageState", "DSMStats", "DSM", "DSMError"]

#: Size of a protocol control message (invalidate / ack / request) in bytes.
CONTROL_MESSAGE_BYTES = 64


class DSMError(Exception):
    """Raised for protocol misuse (unknown node, etc.)."""


class PageState:
    """Per-node MSI state of a page."""

    MODIFIED = "M"
    SHARED = "S"
    INVALID = "I"


@dataclass
class DSMStats:
    """Protocol traffic counters."""

    local_hits: int = 0
    page_transfers: int = 0
    invalidations: int = 0
    control_messages: int = 0
    bytes_transferred: float = 0.0


@dataclass(slots=True)
class _PageEntry:
    """Directory entry: which node holds the page in which state."""

    states: dict[str, str] = field(default_factory=dict)

    def holders(self) -> list[str]:
        return [n for n, s in self.states.items() if s != PageState.INVALID]

    def has_holder(self) -> bool:
        """True if any node holds a valid (S/M) copy; avoids building
        the holder list on the migration fast path."""
        for state in self.states.values():
            if state != PageState.INVALID:
                return True
        return False

    def invalidate_all(self) -> None:
        states = self.states
        for node in states:
            states[node] = PageState.INVALID

    def owner(self) -> Optional[str]:
        for node, state in self.states.items():
            if state == PageState.MODIFIED:
                return node
        return None


@dataclass(slots=True)
class _Span:
    """A contiguous page range whose pages all share one state map.

    ``start`` / ``end`` are page addresses (end exclusive, both
    page-aligned). Spans never overlap each other or ``directory``.
    """

    start: int
    end: int
    states: dict[str, str] = field(default_factory=dict)

    def npages(self, page_size: int) -> int:
        return (self.end - self.start) // page_size

    def has_holder(self) -> bool:
        for state in self.states.values():
            if state != PageState.INVALID:
                return True
        return False


class DSM:
    """A directory-based MSI DSM over a link model."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        page_size: int = 4096,
        tracer: Optional[Tracer] = None,
    ):
        if page_size <= 0 or page_size & (page_size - 1):
            raise DSMError(f"page size must be a power of two, got {page_size}")
        self.sim = sim
        self.link = link
        self.page_size = page_size
        self.tracer = tracer or Tracer(enabled=False)
        self.nodes: set[str] = set()
        self.directory: dict[int, _PageEntry] = {}
        #: Uniform-state spans, sorted by start, disjoint from each
        #: other and from ``directory``.
        self._spans: list[_Span] = []
        #: (first_page, n) -> expected dense page list; lets
        #: :meth:`_contiguous_run` recognize the recurring migration
        #: working sets with one C-level list comparison.
        self._run_cache: dict[tuple[int, int], list[int]] = {}
        self.stats = DSMStats()

    # -- topology ------------------------------------------------------------
    def add_node(self, name: str) -> None:
        if name in self.nodes:
            raise DSMError(f"node {name!r} already registered")
        self.nodes.add(name)

    def _check_node(self, node: str) -> None:
        if node not in self.nodes:
            raise DSMError(f"unknown DSM node {node!r}")

    def page_of(self, addr: int) -> int:
        return addr & ~(self.page_size - 1)

    def page_state(self, node: str, addr: int) -> str:
        self._check_node(node)
        page = self.page_of(addr)
        entry = self.directory.get(page)
        if entry is not None:
            return entry.states.get(node, PageState.INVALID)
        span = self._span_at(page)
        if span is not None:
            return span.states.get(node, PageState.INVALID)
        return PageState.INVALID

    # -- span layer ----------------------------------------------------------
    def _span_index(self, page: int) -> int:
        """Index of the last span with start <= page (bisect on starts)."""
        lo, hi = 0, len(self._spans)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._spans[mid].start <= page:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def _span_at(self, page: int) -> Optional[_Span]:
        i = self._span_index(page)
        if i >= 0:
            span = self._spans[i]
            if span.start <= page < span.end:
                return span
        return None

    def _materialize(self, page: int) -> Optional[_PageEntry]:
        """Move one span page into ``directory`` (splitting its span)."""
        i = self._span_index(page)
        if i < 0:
            return None
        span = self._spans[i]
        if not span.start <= page < span.end:
            return None
        entry = _PageEntry(states=dict(span.states))
        self.directory[page] = entry
        replacement: list[_Span] = []
        if span.start < page:
            replacement.append(_Span(span.start, page, span.states))
        if page + self.page_size < span.end:
            replacement.append(
                _Span(page + self.page_size, span.end, dict(span.states))
            )
        self._spans[i : i + 1] = replacement
        return entry

    def _split_spans_at(self, boundary: int) -> None:
        """Ensure no span straddles ``boundary`` (a page address)."""
        i = self._span_index(boundary)
        if i < 0:
            return
        span = self._spans[i]
        if span.start < boundary < span.end:
            tail = _Span(boundary, span.end, dict(span.states))
            span.end = boundary
            self._spans.insert(i + 1, tail)

    def _spans_in(self, start: int, end: int) -> list[_Span]:
        """Spans fully inside [start, end) (after boundary splits)."""
        self._split_spans_at(start)
        self._split_spans_at(end)
        lo = bisect_right([s.start for s in self._spans], start - 1)
        out = []
        for span in self._spans[lo:]:
            if span.start >= end:
                break
            out.append(span)
        return out

    def _directory_pages_in(self, start: int, end: int) -> list[int]:
        """Directory pages inside [start, end), cheapest-side scan."""
        directory = self.directory
        if not directory:
            return []
        n_range = (end - start) // self.page_size
        if len(directory) <= n_range:
            return sorted(p for p in directory if start <= p < end)
        return [
            page
            for page in range(start, end, self.page_size)
            if page in directory
        ]

    def _replace_range(self, start: int, end: int, states: dict[str, str]) -> None:
        """Make [start, end) one uniform span with ``states``.

        Every covered span and directory entry is absorbed; adjacent
        spans with the same state map are *not* merged (the common
        working-set ranges re-coalesce naturally on the next migrate).
        """
        for page in self._directory_pages_in(start, end):
            del self.directory[page]
        self._split_spans_at(start)
        self._split_spans_at(end)
        spans = self._spans
        lo = 0
        while lo < len(spans) and spans[lo].start < start:
            lo += 1
        hi = lo
        while hi < len(spans) and spans[hi].start < end:
            hi += 1
        spans[lo:hi] = [_Span(start, end, states)]

    def _contiguous_run(self, pages_sorted_hint: Sequence[int], mask: int, page_size: int):
        """(start, end) if the addresses cover one contiguous ascending
        page range (duplicates allowed), else ``None``.

        The dominant caller is thread migration, which always passes the
        same dense page-aligned working-set list; the fast path compares
        the input against a cached expected run at C speed (one list
        equality) instead of walking it address by address, and only
        falls back to the exact per-address scan for irregular inputs.
        """
        if not pages_sorted_hint:
            return None
        first = pages_sorted_hint[0]
        if first & mask == first:
            n = len(pages_sorted_hint)
            last = pages_sorted_hint[-1]
            if last - first == (n - 1) * page_size:
                cache = self._run_cache
                expected = cache.get((first, n))
                if expected is None:
                    expected = cache[(first, n)] = list(
                        range(first, first + n * page_size, page_size)
                    )
                if pages_sorted_hint == expected:
                    return first, first + n * page_size
        prev = pages_sorted_hint[0] & mask
        start = prev
        for addr in pages_sorted_hint:
            page = addr & mask
            if page == prev:
                continue
            if page != prev + page_size:
                return None
            prev = page
        return start, prev + page_size

    # -- protocol operations ----------------------------------------------------
    def _fault_entry(self, page: int) -> _PageEntry:
        """The per-page entry for an individual access, materializing
        the page out of a span if needed."""
        entry = self.directory.get(page)
        if entry is None:
            entry = self._materialize(page)
        if entry is None:
            entry = _PageEntry()
            self.directory[page] = entry
        return entry

    def read(self, node: str, addr: int) -> Event:
        """Gain read access to the page holding ``addr``.

        Local S/M copies hit immediately; otherwise the page is fetched
        from its owner (downgrading an M copy to S).
        """
        self._check_node(node)
        page = self.page_of(addr)
        entry = self._fault_entry(page)
        state = entry.states.get(node, PageState.INVALID)
        done = self.sim.event()

        if state in (PageState.SHARED, PageState.MODIFIED):
            self.stats.local_hits += 1
            done.succeed(page)
            return done

        holders = entry.holders()
        if not holders:
            # First touch anywhere: zero-fill locally, no traffic.
            entry.states[node] = PageState.SHARED
            self.stats.local_hits += 1
            done.succeed(page)
            return done

        def protocol():
            # Request to the directory/owner, then the page payload back.
            self.stats.control_messages += 1
            self.stats.bytes_transferred += CONTROL_MESSAGE_BYTES
            yield self.link.transfer(CONTROL_MESSAGE_BYTES, tag=("dsm-req", node, page))
            owner = entry.owner()
            if owner is not None:
                entry.states[owner] = PageState.SHARED  # writeback/downgrade
            self.stats.page_transfers += 1
            self.stats.bytes_transferred += self.page_size
            yield self.link.transfer(self.page_size, tag=("dsm-page", node, page))
            entry.states[node] = PageState.SHARED
            if self.tracer.enabled:
                self.tracer.record(
                    "dsm", f"{node}: read-fetch page {page:#x}", node=node, page=page
                )
            done.succeed(page)

        self.sim.spawn(protocol())
        return done

    def write(self, node: str, addr: int) -> Event:
        """Gain exclusive (M) access to the page holding ``addr``.

        Invalidates every other copy (one control round per holder,
        issued concurrently) and fetches the payload if ``node`` has no
        valid copy.
        """
        self._check_node(node)
        page = self.page_of(addr)
        entry = self._fault_entry(page)
        state = entry.states.get(node, PageState.INVALID)
        done = self.sim.event()

        others = [n for n in entry.holders() if n != node]
        if state == PageState.MODIFIED:
            self.stats.local_hits += 1
            done.succeed(page)
            return done
        if state == PageState.SHARED and not others:
            # Silent S->M upgrade: sole holder.
            entry.states[node] = PageState.MODIFIED
            self.stats.local_hits += 1
            done.succeed(page)
            return done
        if not others and state == PageState.INVALID and not entry.holders():
            # First touch anywhere.
            entry.states[node] = PageState.MODIFIED
            self.stats.local_hits += 1
            done.succeed(page)
            return done

        need_payload = state == PageState.INVALID

        def protocol():
            # Invalidations to all other holders, in parallel.
            invalidation_acks = []
            for other in others:
                self.stats.invalidations += 1
                self.stats.control_messages += 2  # invalidate + ack
                self.stats.bytes_transferred += 2 * CONTROL_MESSAGE_BYTES
                invalidation_acks.append(
                    self.link.transfer(
                        2 * CONTROL_MESSAGE_BYTES, tag=("dsm-inv", other, page)
                    )
                )
            if invalidation_acks:
                yield self.sim.all_of(invalidation_acks)
            if need_payload:
                self.stats.page_transfers += 1
                self.stats.bytes_transferred += self.page_size
                yield self.link.transfer(self.page_size, tag=("dsm-page", node, page))
            for other in others:
                entry.states[other] = PageState.INVALID
            entry.states[node] = PageState.MODIFIED
            if self.tracer.enabled:
                self.tracer.record(
                    "dsm", f"{node}: write-own page {page:#x}", node=node, page=page
                )
            done.succeed(page)

        self.sim.spawn(protocol())
        return done

    def seed_pages(self, node: str, addrs: Sequence[int]) -> None:
        """Mark pages as locally modified at ``node`` with no traffic.

        Models memory a process allocated and wrote before the DSM ever
        got involved (its pre-migration working set). A contiguous
        ascending range (the common working-set shape) becomes one
        uniform span in O(spans); arbitrary address lists fall back to
        per-page entries.
        """
        self._check_node(node)
        mask = ~(self.page_size - 1)
        run = self._contiguous_run(addrs, mask, self.page_size)
        if run is not None:
            self._replace_range(run[0], run[1], {node: PageState.MODIFIED})
            return
        directory = self.directory
        for addr in addrs:
            page = addr & mask
            entry = directory.get(page)
            if entry is None and self._span_at(page) is not None:
                entry = self._materialize(page)
            if entry is None:
                directory[page] = _PageEntry(states={node: PageState.MODIFIED})
                continue
            entry.invalidate_all()
            entry.states[node] = PageState.MODIFIED

    def migrate_pages(self, src: str, dst: str, addrs: Sequence[int]) -> Event:
        """Eagerly move a working set from ``src`` to ``dst`` (M at dst).

        Used when a thread migrates: its dirty pages are pushed up front
        in one batched wire transfer (as Popcorn's migration path does)
        instead of being faulted over one by one. A contiguous range is
        accounted span-by-span — O(spans) directory work per migration,
        identical stats and completion time to the per-page walk (and to
        :meth:`migrate_pages_reference`, the page-by-page protocol).
        """
        self._check_node(src)
        self._check_node(dst)
        mask = ~(self.page_size - 1)
        run = self._contiguous_run(addrs, mask, self.page_size)
        if run is not None:
            return self._migrate_range(src, dst, run[0], run[1])

        pages = sorted({a & mask for a in addrs})
        n_pages = len(pages)
        directory = self.directory
        to_transfer = 0
        to_claim: list[int] = []
        for page in pages:
            entry = directory.get(page)
            if entry is None and self._span_at(page) is not None:
                entry = self._materialize(page)
            if entry is None:
                directory[page] = _PageEntry()
                to_claim.append(page)
                continue
            if entry.states.get(dst) == PageState.MODIFIED:
                continue
            to_claim.append(page)
            if entry.has_holder():
                to_transfer += 1

        def finish() -> None:
            for page in to_claim:
                entry = directory[page]
                entry.invalidate_all()
                entry.states[dst] = PageState.MODIFIED

        return self._finish_migration(
            src, dst, n_pages, len(to_claim), to_transfer, finish
        )

    def _migrate_range(self, src: str, dst: str, start: int, end: int) -> Event:
        """Span-batched migration of the contiguous range [start, end)."""
        page_size = self.page_size
        n_pages = (end - start) // page_size
        directory = self.directory

        n_claim = 0
        n_transfer = 0
        dir_pages = self._directory_pages_in(start, end)
        claim_dir: list[int] = []
        for page in dir_pages:
            entry = directory[page]
            if entry.states.get(dst) == PageState.MODIFIED:
                continue
            claim_dir.append(page)
            n_claim += 1
            if entry.has_holder():
                n_transfer += 1
        spans = self._spans_in(start, end)
        covered = len(dir_pages)
        for span in spans:
            npages = span.npages(page_size)
            covered += npages
            if span.states.get(dst) == PageState.MODIFIED:
                continue
            n_claim += npages
            if span.has_holder():
                n_transfer += npages
        # Untouched gap pages: first-touch claims, nothing on the wire.
        n_claim += n_pages - covered

        def finish() -> None:
            # The whole range ends uniformly M-at-dst (pages skipped
            # above were already M at dst), so it coalesces into one
            # span — the next migration of this working set is O(1).
            self._replace_range(start, end, {dst: PageState.MODIFIED})

        return self._finish_migration(src, dst, n_pages, n_claim, n_transfer, finish)

    def _finish_migration(
        self,
        src: str,
        dst: str,
        n_pages: int,
        n_claim: int,
        n_transfer: int,
        apply_states,
    ) -> Event:
        """Shared tail of both migration paths: one wire transfer for
        all payload pages, then the directory update."""
        done = self.sim.event()

        def finish() -> None:
            apply_states()
            if self.tracer.enabled:
                self.tracer.record(
                    "dsm",
                    f"{src} -> {dst}: migrated {n_claim} pages "
                    f"({n_transfer} over the wire)",
                    src=src,
                    dst=dst,
                    pages=n_claim,
                )
            done.succeed(n_pages)

        if n_transfer:
            nbytes = n_transfer * self.page_size
            self.stats.page_transfers += n_transfer
            self.stats.bytes_transferred += nbytes
            transfer = self.link.transfer(nbytes, tag=("dsm-migrate", dst, n_transfer))
            transfer.callbacks.append(lambda _ev: finish())
        else:
            finish()
        return done

    def migrate_pages_reference(
        self, src: str, dst: str, addrs: Sequence[int]
    ) -> Event:
        """The per-page reference protocol for :meth:`migrate_pages`.

        Each payload page travels as its own (concurrent) link transfer
        and each directory entry is claimed individually — one event
        chain per page, exactly what the batched path coalesces. Kept
        as the executable specification: the hypothesis property suite
        asserts batched and reference migrations agree on every stats
        counter, every resulting page state, and the completion time.
        """
        self._check_node(src)
        self._check_node(dst)
        mask = ~(self.page_size - 1)
        pages = sorted({a & mask for a in addrs})
        directory = self.directory
        done = self.sim.event()

        to_claim: list[int] = []
        transfers: list[Event] = []
        for page in pages:
            entry = directory.get(page)
            if entry is None and self._span_at(page) is not None:
                entry = self._materialize(page)
            if entry is None:
                directory[page] = _PageEntry()
                to_claim.append(page)
                continue
            if entry.states.get(dst) == PageState.MODIFIED:
                continue
            to_claim.append(page)
            if entry.has_holder():
                self.stats.page_transfers += 1
                self.stats.bytes_transferred += self.page_size
                transfers.append(
                    self.link.transfer(self.page_size, tag=("dsm-migrate", dst, 1))
                )

        def finish(_ev=None) -> None:
            for page in to_claim:
                entry = directory[page]
                entry.invalidate_all()
                entry.states[dst] = PageState.MODIFIED
            self.tracer.record(
                "dsm",
                f"{src} -> {dst}: migrated {len(to_claim)} pages "
                f"({len(transfers)} over the wire, per-page)",
                src=src,
                dst=dst,
                pages=len(to_claim),
            )
            done.succeed(len(pages))

        if transfers:
            self.sim.all_of(transfers).callbacks.append(finish)
        else:
            finish()
        return done
