"""The Popcorn run-time library model: cross-ISA thread migration.

Given a multi-ISA binary, its liveness metadata, and the platform model,
:class:`PopcornRuntime` migrates a thread between the x86 and ARM
servers: it transforms the thread's machine state (consuming CPU on the
source), ships the transformed state over Ethernet, and eagerly moves
the thread's dirty working set through the DSM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.platform import HeterogeneousPlatform
from repro.popcorn.binary import MultiISABinary
from repro.popcorn.dsm import DSM
from repro.popcorn.migration_points import LivenessMetadata
from repro.popcorn.state import MachineState, StateTransformer, TransformError
from repro.sim import Event, Tracer
from repro.types import Target

__all__ = ["PopcornThread", "PopcornRuntime", "MigrationError"]


class MigrationError(Exception):
    """Raised when a requested migration is impossible."""


@dataclass
class PopcornThread:
    """A thread of a multi-ISA process, pinned to one node at a time."""

    thread_id: int
    binary: MultiISABinary
    state: MachineState
    node: Target = Target.X86
    #: Addresses of pages this thread has dirtied since the last migration.
    dirty_addresses: list[int] = field(default_factory=list)
    migration_count: int = 0

    @property
    def isa(self) -> str:
        return self.state.isa


class PopcornRuntime:
    """Executes cross-ISA migrations on the platform model."""

    def __init__(
        self,
        platform: HeterogeneousPlatform,
        metadata: LivenessMetadata,
        dsm: Optional[DSM] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.platform = platform
        self.transformer = StateTransformer(metadata)
        self.dsm = dsm
        self.tracer = tracer or platform.tracer
        self._next_thread_id = 1
        #: Transform memo shared by every thread on this runtime:
        #: ``{(id(source_state), to_isa): (source_state, result_state,
        #: cost_s, state_bytes)}`` plus a reverse index from a result
        #: state back to its source. Machine states are immutable on the
        #: migration path and threads ping-pong between the same two
        #: states, so after the first bounce every migration is a memo
        #: hit; keeping a strong reference to the key state inside the
        #: value makes the id()-key safe (the identity check below can
        #: never see a recycled id). Correctness of the reverse reuse
        #: rests on the transformer's tested bit-identical round-trip
        #: property.
        self._transform_memo: dict = {}
        self._reverse_memo: dict = {}

    def spawn_thread(
        self, binary: MultiISABinary, state: MachineState, node: Target = Target.X86
    ) -> PopcornThread:
        """Register a new thread running ``binary`` at ``state`` on ``node``."""
        if node is Target.FPGA:
            raise MigrationError("threads run on CPUs; FPGA executes kernels")
        if not binary.supports(state.isa):
            raise MigrationError(
                f"binary {binary.name!r} has no image for ISA {state.isa!r}"
            )
        if state.isa != node.isa:
            raise MigrationError(
                f"state is laid out for {state.isa!r} but node is {node.isa!r}"
            )
        thread = PopcornThread(
            thread_id=self._next_thread_id, binary=binary, state=state, node=node
        )
        self._next_thread_id += 1
        return thread

    # -- migration --------------------------------------------------------
    def migrate(self, thread: PopcornThread, to: Target) -> Event:
        """Migrate ``thread`` to node ``to``; fires with the thread when done.

        Steps (each consuming simulated time):
          1. state transformation on the source CPU;
          2. transformed state shipped over Ethernet;
          3. dirty working-set pages pushed through the DSM (if present).
        """
        if to is Target.FPGA:
            raise MigrationError(
                "use the XRT layer for hardware migration; Popcorn handles CPUs"
            )
        if to is thread.node:
            done = self.platform.sim.event()
            done.succeed(thread)
            return done
        to_isa = to.isa
        if not thread.binary.supports(to_isa):
            raise MigrationError(
                f"binary {thread.binary.name!r} has no image for {to_isa!r}"
            )

        source_cluster = self.platform.cluster(thread.node)
        state = thread.state
        memo = self._transform_memo
        key = (id(state), to_isa)
        entry = memo.get(key)
        if entry is not None and entry[0] is state:
            # Forward hit: this exact state object was transformed to
            # ``to_isa`` before (cost and size are functions of the
            # source state, so they are memoized alongside).
            new_state, transform_cost, state_bytes = entry[1], entry[2], entry[3]
        else:
            rev = self._reverse_memo.get(id(state))
            if rev is not None and rev[0] is state and rev[1].isa == to_isa:
                # Reverse hit: ``state`` is itself the result of
                # transforming ``rev[1]`` here earlier. The round trip
                # is bit-identical (a tested transformer property), so
                # transforming back must reproduce ``rev[1]`` — reuse
                # it and memoize the forward direction for next time.
                new_state = rev[1]
                transform_cost = self.transformer.transform_cost_seconds(state)
                state_bytes = state.size_bytes()
                memo[key] = (state, new_state, transform_cost, state_bytes)
            else:
                try:
                    new_state = self.transformer.transform(state, to_isa)
                except TransformError as exc:
                    raise MigrationError(
                        f"state transformation failed: {exc}"
                    ) from exc
                transform_cost = self.transformer.transform_cost_seconds(state)
                state_bytes = state.size_bytes()
                memo[key] = (state, new_state, transform_cost, state_bytes)
                self._reverse_memo[id(new_state)] = (new_state, state)
        done = self.platform.sim.event()
        source_node, dest_node = thread.node, to

        # Callback chain instead of a generator process: transform on
        # the source CPU -> wire the state -> push dirty pages -> commit.
        # Same steps and timing, none of the process/yield machinery.
        def commit() -> None:
            thread.state = new_state
            thread.node = dest_node
            thread.migration_count += 1
            if self.tracer.enabled:
                self.tracer.record(
                    "popcorn",
                    f"thread {thread.thread_id} migrated {source_node} -> {dest_node}",
                    thread=thread.thread_id,
                    source=str(source_node),
                    dest=str(dest_node),
                    state_bytes=state_bytes,
                )
            done.succeed(thread)

        def after_pages(_ev: Event) -> None:
            thread.dirty_addresses.clear()
            commit()

        def after_wire(_ev: Event) -> None:
            if self.dsm is not None and thread.dirty_addresses:
                self.dsm.migrate_pages(
                    str(source_node), str(dest_node), thread.dirty_addresses
                ).callbacks.append(after_pages)
            else:
                commit()

        def after_transform(_job) -> None:
            self.platform.ethernet.transfer(
                state_bytes, tag=("popcorn-state", thread.thread_id)
            ).callbacks.append(after_wire)

        source_cluster.execute_job(
            transform_cost,
            tag=("popcorn-transform", thread.thread_id),
            on_complete=after_transform,
        )
        return done

    def migration_overhead_seconds(
        self, state: MachineState, working_set_bytes: int = 0
    ) -> float:
        """Analytic estimate of one migration's wall-clock cost.

        Used by threshold estimation and tests; the simulated cost adds
        contention on top of this uncontended lower bound.
        """
        transform = self.transformer.transform_cost_seconds(state)
        wire = self.platform.ethernet.ideal_transfer_time(
            state.size_bytes() + working_set_bytes
        )
        return transform + wire
