"""The Popcorn run-time library model: cross-ISA thread migration.

Given a multi-ISA binary, its liveness metadata, and the platform model,
:class:`PopcornRuntime` migrates a thread between the x86 and ARM
servers: it transforms the thread's machine state (consuming CPU on the
source), ships the transformed state over Ethernet, and eagerly moves
the thread's dirty working set through the DSM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.platform import HeterogeneousPlatform
from repro.popcorn.binary import MultiISABinary
from repro.popcorn.dsm import DSM
from repro.popcorn.migration_points import LivenessMetadata
from repro.popcorn.state import MachineState, StateTransformer, TransformError
from repro.sim import Event, Tracer
from repro.types import Target

__all__ = ["PopcornThread", "PopcornRuntime", "MigrationError"]


class MigrationError(Exception):
    """Raised when a requested migration is impossible."""


@dataclass
class PopcornThread:
    """A thread of a multi-ISA process, pinned to one node at a time."""

    thread_id: int
    binary: MultiISABinary
    state: MachineState
    node: Target = Target.X86
    #: Addresses of pages this thread has dirtied since the last migration.
    dirty_addresses: list[int] = field(default_factory=list)
    migration_count: int = 0

    @property
    def isa(self) -> str:
        return self.state.isa


class PopcornRuntime:
    """Executes cross-ISA migrations on the platform model."""

    def __init__(
        self,
        platform: HeterogeneousPlatform,
        metadata: LivenessMetadata,
        dsm: Optional[DSM] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.platform = platform
        self.transformer = StateTransformer(metadata)
        self.dsm = dsm
        self.tracer = tracer or platform.tracer
        self._next_thread_id = 1

    def spawn_thread(
        self, binary: MultiISABinary, state: MachineState, node: Target = Target.X86
    ) -> PopcornThread:
        """Register a new thread running ``binary`` at ``state`` on ``node``."""
        if node is Target.FPGA:
            raise MigrationError("threads run on CPUs; FPGA executes kernels")
        if not binary.supports(state.isa):
            raise MigrationError(
                f"binary {binary.name!r} has no image for ISA {state.isa!r}"
            )
        if state.isa != node.isa:
            raise MigrationError(
                f"state is laid out for {state.isa!r} but node is {node.isa!r}"
            )
        thread = PopcornThread(
            thread_id=self._next_thread_id, binary=binary, state=state, node=node
        )
        self._next_thread_id += 1
        return thread

    # -- migration --------------------------------------------------------
    def migrate(self, thread: PopcornThread, to: Target) -> Event:
        """Migrate ``thread`` to node ``to``; fires with the thread when done.

        Steps (each consuming simulated time):
          1. state transformation on the source CPU;
          2. transformed state shipped over Ethernet;
          3. dirty working-set pages pushed through the DSM (if present).
        """
        if to is Target.FPGA:
            raise MigrationError(
                "use the XRT layer for hardware migration; Popcorn handles CPUs"
            )
        if to is thread.node:
            done = self.platform.sim.event()
            done.succeed(thread)
            return done
        to_isa = to.isa
        if not thread.binary.supports(to_isa):
            raise MigrationError(
                f"binary {thread.binary.name!r} has no image for {to_isa!r}"
            )

        source_cluster = self.platform.cluster(thread.node)
        try:
            new_state = self.transformer.transform(thread.state, to_isa)
        except TransformError as exc:
            raise MigrationError(f"state transformation failed: {exc}") from exc
        transform_cost = self.transformer.transform_cost_seconds(thread.state)
        state_bytes = thread.state.size_bytes()
        done = self.platform.sim.event()
        source_node, dest_node = thread.node, to

        def protocol():
            yield source_cluster.execute(
                transform_cost, tag=("popcorn-transform", thread.thread_id)
            )
            yield self.platform.ethernet.transfer(
                state_bytes, tag=("popcorn-state", thread.thread_id)
            )
            if self.dsm is not None and thread.dirty_addresses:
                yield self.dsm.migrate_pages(
                    str(source_node), str(dest_node), thread.dirty_addresses
                )
                thread.dirty_addresses.clear()
            thread.state = new_state
            thread.node = dest_node
            thread.migration_count += 1
            self.tracer.record(
                "popcorn",
                f"thread {thread.thread_id} migrated {source_node} -> {dest_node}",
                thread=thread.thread_id,
                source=str(source_node),
                dest=str(dest_node),
                state_bytes=state_bytes,
            )
            done.succeed(thread)

        self.platform.sim.spawn(protocol())
        return done

    def migration_overhead_seconds(
        self, state: MachineState, working_set_bytes: int = 0
    ) -> float:
        """Analytic estimate of one migration's wall-clock cost.

        Used by threshold estimation and tests; the simulated cost adds
        contention on top of this uncontended lower bound.
        """
        transform = self.transformer.transform_cost_seconds(state)
        wire = self.platform.ethernet.ideal_transfer_time(
            state.size_bytes() + working_set_bytes
        )
        return transform + wire
