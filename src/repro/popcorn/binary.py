"""Multi-ISA binary artifacts.

Popcorn Linux's compiler emits one machine-code image per ISA but keeps
every symbol (globals, statics, functions) at the *same virtual address*
in all images, so pointers mean the same thing before and after a
migration (Section 2). This module models that artifact: symbols, the
cross-ISA address-alignment pass, per-ISA images, and the combined
multi-ISA binary with its size accounting (used by Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "Symbol",
    "SymbolKind",
    "align_symbols",
    "ISAImage",
    "MultiISABinary",
    "LayoutError",
]


class LayoutError(Exception):
    """Raised when cross-ISA address alignment is impossible or violated."""


class SymbolKind:
    """ELF-like symbol kinds."""

    FUNCTION = "function"
    OBJECT = "object"  # globals / statics
    TLS = "tls"

    ALL = (FUNCTION, OBJECT, TLS)


@dataclass(frozen=True)
class Symbol:
    """A named program entity that must live at one address on every ISA.

    ``sizes`` maps ISA name to the symbol's size in that image (function
    bodies differ across ISAs; data objects usually do not).
    """

    name: str
    kind: str
    sizes: dict[str, int] = field(hash=False)
    align: int = 16

    def __post_init__(self):
        if self.kind not in SymbolKind.ALL:
            raise LayoutError(f"unknown symbol kind {self.kind!r}")
        if self.align <= 0 or (self.align & (self.align - 1)):
            raise LayoutError(f"alignment must be a power of two, got {self.align}")
        if not self.sizes:
            raise LayoutError(f"symbol {self.name!r} has no per-ISA sizes")
        if any(size < 0 for size in self.sizes.values()):
            raise LayoutError(f"symbol {self.name!r} has a negative size")

    def max_size(self) -> int:
        """The slot size the aligned layout must reserve on every ISA."""
        return max(self.sizes.values())


def align_symbols(
    symbols: Iterable[Symbol], base_address: int = 0x400000
) -> dict[str, int]:
    """Assign each symbol one virtual address shared by all ISAs.

    Mirrors Popcorn's alignment tool: symbols are laid out at their
    maximum per-ISA size (so every image can hold its version in the
    same slot), respecting each symbol's alignment. Returns
    ``{symbol_name: address}``. Deterministic: symbols are placed in the
    order given.
    """
    addresses: dict[str, int] = {}
    cursor = base_address
    for sym in symbols:
        if sym.name in addresses:
            raise LayoutError(f"duplicate symbol {sym.name!r}")
        cursor = (cursor + sym.align - 1) & ~(sym.align - 1)
        addresses[sym.name] = cursor
        cursor += sym.max_size()
    return addresses


@dataclass(frozen=True)
class ISAImage:
    """One ISA's view of the program: section sizes plus migration metadata.

    ``metadata_bytes`` covers Popcorn's per-call-site liveness records
    used by the run-time state transformation.
    """

    isa: str
    text_bytes: int
    data_bytes: int
    metadata_bytes: int = 0

    @property
    def size_bytes(self) -> int:
        return self.text_bytes + self.data_bytes + self.metadata_bytes


class MultiISABinary:
    """An executable that can run — and migrate — on several ISAs."""

    def __init__(
        self,
        name: str,
        images: dict[str, ISAImage],
        symbols: Optional[list[Symbol]] = None,
        base_address: int = 0x400000,
    ):
        if not images:
            raise LayoutError(f"binary {name!r} has no ISA images")
        for isa, image in images.items():
            if image.isa != isa:
                raise LayoutError(
                    f"image key {isa!r} does not match image ISA {image.isa!r}"
                )
        self.name = name
        self.images = dict(images)
        self.symbols = list(symbols or [])
        self.addresses = align_symbols(self.symbols, base_address)
        self._check_symbol_isas()

    def _check_symbol_isas(self) -> None:
        isas = set(self.images)
        for sym in self.symbols:
            missing = isas - set(sym.sizes)
            if missing:
                raise LayoutError(
                    f"symbol {sym.name!r} lacks sizes for ISAs {sorted(missing)}"
                )

    @property
    def isas(self) -> tuple[str, ...]:
        return tuple(sorted(self.images))

    def supports(self, isa: str) -> bool:
        return isa in self.images

    def address_of(self, symbol_name: str) -> int:
        """The (ISA-independent) virtual address of a symbol."""
        try:
            return self.addresses[symbol_name]
        except KeyError:
            raise LayoutError(f"unknown symbol {symbol_name!r}") from None

    @property
    def size_bytes(self) -> int:
        """Total on-disk size: the sum of all ISA images."""
        return sum(image.size_bytes for image in self.images.values())

    def __repr__(self) -> str:
        return (
            f"MultiISABinary({self.name!r}, isas={list(self.isas)}, "
            f"{self.size_bytes} bytes)"
        )
