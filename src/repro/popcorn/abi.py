"""ISA/ABI definitions for the state transformer.

Captures the parts of the x86-64 SysV and AArch64 AAPCS ABIs that the
cross-ISA state transformation needs: register files, argument/return
registers, callee-saved sets, and stack alignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

__all__ = ["ISADef", "X86_64", "AARCH64", "isa_def", "UnknownISAError"]


class UnknownISAError(Exception):
    """Raised when an ISA name has no registered ABI definition."""


@dataclass(frozen=True)
class ISADef:
    """The ABI facts the transformer relies on for one ISA."""

    name: str
    word_size: int
    arg_regs: tuple[str, ...]
    ret_reg: str
    sp_reg: str
    fp_reg: str
    callee_saved: tuple[str, ...]
    scratch_regs: tuple[str, ...]
    fp_arg_regs: tuple[str, ...]
    stack_align: int
    red_zone: int = 0

    @cached_property
    def all_registers(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for reg in (
            *self.arg_regs,
            self.ret_reg,
            self.sp_reg,
            self.fp_reg,
            *self.callee_saved,
            *self.scratch_regs,
            *self.fp_arg_regs,
        ):
            seen.setdefault(reg)
        return tuple(seen)

    def __post_init__(self):
        if self.word_size not in (4, 8):
            raise ValueError(f"unsupported word size {self.word_size}")
        if self.stack_align & (self.stack_align - 1):
            raise ValueError("stack_align must be a power of two")


X86_64 = ISADef(
    name="x86_64",
    word_size=8,
    arg_regs=("rdi", "rsi", "rdx", "rcx", "r8", "r9"),
    ret_reg="rax",
    sp_reg="rsp",
    fp_reg="rbp",
    callee_saved=("rbx", "r12", "r13", "r14", "r15"),
    scratch_regs=("r10", "r11"),
    fp_arg_regs=tuple(f"xmm{i}" for i in range(8)),
    stack_align=16,
    red_zone=128,
)

AARCH64 = ISADef(
    name="aarch64",
    word_size=8,
    arg_regs=tuple(f"x{i}" for i in range(8)),
    ret_reg="x0",
    sp_reg="sp",
    fp_reg="x29",
    callee_saved=tuple(f"x{i}" for i in range(19, 29)),
    scratch_regs=tuple(f"x{i}" for i in range(9, 16)),
    fp_arg_regs=tuple(f"v{i}" for i in range(8)),
    stack_align=16,
    red_zone=0,
)

_ISA_DEFS = {isa.name: isa for isa in (X86_64, AARCH64)}


def isa_def(name: str) -> ISADef:
    """Look up an ABI definition by ISA name."""
    try:
        return _ISA_DEFS[name]
    except KeyError:
        raise UnknownISAError(f"no ABI definition for ISA {name!r}") from None
