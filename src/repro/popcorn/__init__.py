"""Popcorn-Linux-like substrate: multi-ISA binaries and cross-ISA migration.

Models the pieces of Popcorn Linux that Xar-Trek builds on (paper
Section 2): multi-ISA binaries with cross-ISA-aligned symbol tables,
migration points with per-ISA liveness metadata, an executable
register/stack state transformation, a page-based DSM, and the run-time
that performs thread migration between the x86 and ARM servers.
"""

from repro.popcorn.abi import AARCH64, X86_64, ISADef, UnknownISAError, isa_def
from repro.popcorn.binary import (
    ISAImage,
    LayoutError,
    MultiISABinary,
    Symbol,
    SymbolKind,
    align_symbols,
)
from repro.popcorn.dsm import DSM, DSMError, DSMStats, PageState
from repro.popcorn.elf import XELFError, dump_xelf, load_xelf, read_xelf, write_xelf
from repro.popcorn.minic import MiniCError, compile_minic, parse_minic
from repro.popcorn.migration_points import (
    CType,
    LivenessMetadata,
    LiveVar,
    Location,
    MetadataError,
    MigrationPoint,
    RegisterLoc,
    StackLoc,
    allocate_locations,
)
from repro.popcorn.runtime import MigrationError, PopcornRuntime, PopcornThread
from repro.popcorn.state import (
    STACK_TOP,
    Frame,
    MachineState,
    StateTransformer,
    TransformError,
)
from repro.popcorn.vm import (
    BinOp,
    Branch,
    Call,
    CompiledProgram,
    Const,
    Function,
    Instr,
    Jump,
    Load,
    MigratableVM,
    MigrationPointInstr,
    Program,
    Ret,
    Store,
    VMError,
    compile_program,
    instrument_program,
)

__all__ = [
    "AARCH64",
    "BinOp",
    "Branch",
    "Call",
    "CompiledProgram",
    "Const",
    "CType",
    "Function",
    "Instr",
    "Jump",
    "Load",
    "MigratableVM",
    "MigrationPointInstr",
    "MiniCError",
    "compile_minic",
    "parse_minic",
    "Program",
    "Ret",
    "Store",
    "VMError",
    "compile_program",
    "instrument_program",
    "DSM",
    "DSMError",
    "DSMStats",
    "Frame",
    "ISADef",
    "ISAImage",
    "LayoutError",
    "LivenessMetadata",
    "LiveVar",
    "Location",
    "MachineState",
    "MetadataError",
    "MigrationError",
    "MigrationPoint",
    "MultiISABinary",
    "PageState",
    "PopcornRuntime",
    "PopcornThread",
    "RegisterLoc",
    "STACK_TOP",
    "StackLoc",
    "StateTransformer",
    "Symbol",
    "SymbolKind",
    "TransformError",
    "UnknownISAError",
    "X86_64",
    "XELFError",
    "align_symbols",
    "allocate_locations",
    "dump_xelf",
    "isa_def",
    "load_xelf",
    "read_xelf",
    "write_xelf",
]
