"""MiniC: a small C-like language compiling to the migratable VM's IR.

The Xar-Trek toolchain consumes C; this front end closes the loop for
the instruction-level substrate: write a function in MiniC source,
compile it (lexer -> recursive-descent parser -> AST -> IR codegen),
and run it on :class:`~repro.popcorn.vm.MigratableVM`, migrating
between ISA layouts at ``migrate_point`` statements.

Grammar (integers only; all variables are i64)::

    program    := func*
    func       := "func" NAME "(" [NAME ("," NAME)*] ")" block
    block      := "{" stmt* "}"
    stmt       := "let" NAME "=" expr ";"
                | NAME "=" expr ";"
                | "if" expr block ["else" block]
                | "while" expr block
                | "return" [expr] ";"
                | "migrate_point" [NAME] ";"
                | "store" "(" expr "," expr ")" ";"
    expr       := sum [("=="|"!="|"<"|"<="|">"|">=") sum]
    sum        := product (("+"|"-") product)*
    product    := atom (("*"|"/"|"%") atom)*
    atom       := NUMBER | NAME | NAME "(" [expr ("," expr)*] ")"
                | "load" "(" expr ")" | "(" expr ")" | "-" atom

Example::

    func fact(n) {
        migrate_point entry;
        if n <= 1 { return 1; }
        return n * fact(n - 1);
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.popcorn.migration_points import CType
from repro.popcorn.vm import (
    BinOp,
    Branch,
    Call,
    Const,
    Function,
    Instr,
    Jump,
    Load,
    MigrationPointInstr,
    Program,
    Ret,
    Store,
)

__all__ = ["MiniCError", "compile_minic", "parse_minic"]


class MiniCError(Exception):
    """Raised for lexical, syntactic, or semantic errors."""


# -- lexer -------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<comment>//[^\n]*)"
    r"|(?P<number>\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>==|!=|<=|>=|[-+*/%<>=(){},;])"
    r")"
)

_KEYWORDS = {"func", "let", "if", "else", "while", "return", "migrate_point",
             "load", "store"}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | name | keyword | op
    text: str
    pos: int


def _lex(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if not match or match.end() == index:
            if source[index:].strip():
                raise MiniCError(f"lexical error at {source[index:index + 12]!r}")
            break
        index = match.end()
        if match.lastgroup == "comment":
            continue
        text = match.group(match.lastgroup)
        kind = match.lastgroup
        if kind == "name" and text in _KEYWORDS:
            kind = "keyword"
        tokens.append(_Token(kind, text, match.start()))
    return tokens


# -- parser / code generator ------------------------------------------------------
class _FunctionBuilder:
    """Accumulates instructions and resolves structured control flow."""

    def __init__(self, name: str, params: list[str]):
        self.name = name
        self.params = params
        self.variables: dict[str, None] = {p: None for p in params}
        self.body: list[Instr] = []
        self._temp_count = 0

    def declare(self, name: str) -> None:
        self.variables.setdefault(name)

    def require(self, name: str) -> None:
        if name not in self.variables:
            raise MiniCError(f"{self.name}: use of undeclared variable {name!r}")

    def temp(self) -> str:
        self._temp_count += 1
        name = f"$t{self._temp_count}"
        self.declare(name)
        return name

    def emit(self, instr: Instr) -> int:
        self.body.append(instr)
        return len(self.body) - 1

    def patch_jump(self, index: int, target: int) -> None:
        instr = self.body[index]
        if isinstance(instr, Jump):
            self.body[index] = Jump(f"@{target}")
        elif isinstance(instr, Branch):
            self.body[index] = Branch(instr.cond_var, f"@{target}")
        else:  # pragma: no cover - builder misuse
            raise MiniCError("patching a non-jump")

    def finish(self) -> Function:
        if not self.body or not isinstance(self.body[-1], Ret):
            # Implicit `return 0;` like C's main.
            zero = self.temp()
            self.emit(Const(zero, 0))
            self.emit(Ret(zero))
        return Function(
            name=self.name,
            params=tuple(self.params),
            variables=tuple((v, CType.I64) for v in self.variables),
            body=tuple(self.body),
        )


class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0
        self.functions: dict[str, Function] = {}

    # -- token plumbing ----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise MiniCError("unexpected end of input")
        self.index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            line = self.source.count("\n", 0, token.pos) + 1
            raise MiniCError(f"line {line}: expected {text!r}, got {token.text!r}")
        return token

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self.index += 1
            return True
        return False

    # -- grammar ------------------------------------------------------------
    def parse_program(self) -> Program:
        while self._peek() is not None:
            self._parse_function()
        if not self.functions:
            raise MiniCError("no functions defined")
        entry = next(iter(self.functions))
        return Program(functions=self.functions, entry=entry)

    def _parse_function(self) -> None:
        self._expect("func")
        name = self._next()
        if name.kind != "name":
            raise MiniCError(f"bad function name {name.text!r}")
        self._expect("(")
        params: list[str] = []
        if not self._accept(")"):
            while True:
                param = self._next()
                if param.kind != "name":
                    raise MiniCError(f"bad parameter {param.text!r}")
                params.append(param.text)
                if self._accept(")"):
                    break
                self._expect(",")
        if name.text in self.functions:
            raise MiniCError(f"function {name.text!r} redefined")
        builder = _FunctionBuilder(name.text, params)
        self._parse_block(builder)
        self.functions[name.text] = builder.finish()

    def _parse_block(self, fb: _FunctionBuilder) -> None:
        self._expect("{")
        while not self._accept("}"):
            self._parse_statement(fb)

    def _parse_statement(self, fb: _FunctionBuilder) -> None:
        token = self._peek()
        if token is None:
            raise MiniCError("unexpected end of input in block")

        if token.text == "let":
            self._next()
            name = self._next().text
            fb.declare(name)
            self._expect("=")
            value = self._parse_expr(fb)
            self._expect(";")
            self._emit_assign(fb, name, value)
        elif token.text == "if":
            self._next()
            cond = self._parse_expr(fb)
            not_cond = fb.temp()
            zero = fb.temp()
            fb.emit(Const(zero, 0))
            fb.emit(BinOp("eq", not_cond, cond, zero))
            skip_then = fb.emit(Branch(not_cond, "@?"))
            self._parse_block(fb)
            if self._accept("else"):
                skip_else = fb.emit(Jump("@?"))
                fb.patch_jump(skip_then, len(fb.body))
                self._parse_block(fb)
                fb.patch_jump(skip_else, len(fb.body))
            else:
                fb.patch_jump(skip_then, len(fb.body))
        elif token.text == "while":
            self._next()
            loop_top = len(fb.body)
            cond = self._parse_expr(fb)
            not_cond = fb.temp()
            zero = fb.temp()
            fb.emit(Const(zero, 0))
            fb.emit(BinOp("eq", not_cond, cond, zero))
            exit_jump = fb.emit(Branch(not_cond, "@?"))
            self._parse_block(fb)
            fb.emit(Jump(f"@{loop_top}"))
            fb.patch_jump(exit_jump, len(fb.body))
        elif token.text == "return":
            self._next()
            if self._accept(";"):
                fb.emit(Ret(None))
            else:
                value = self._parse_expr(fb)
                self._expect(";")
                fb.emit(Ret(value))
        elif token.text == "migrate_point":
            self._next()
            tag = ""
            nxt = self._peek()
            if nxt is not None and nxt.kind == "name":
                tag = self._next().text
            self._expect(";")
            fb.emit(MigrationPointInstr(tag))
        elif token.text == "store":
            self._next()
            self._expect("(")
            addr = self._parse_expr(fb)
            self._expect(",")
            value = self._parse_expr(fb)
            self._expect(")")
            self._expect(";")
            fb.emit(Store(value, addr))
        elif token.kind == "name":
            name = self._next().text
            fb.require(name)
            self._expect("=")
            value = self._parse_expr(fb)
            self._expect(";")
            self._emit_assign(fb, name, value)
        else:
            raise MiniCError(f"unexpected token {token.text!r} in block")

    def _emit_assign(self, fb: _FunctionBuilder, name: str, source_var: str) -> None:
        # Copy via `name = source + 0` (the IR has no Move).
        zero = fb.temp()
        fb.emit(Const(zero, 0))
        fb.emit(BinOp("add", name, source_var, zero))

    # -- expressions (each returns the variable holding the value) ----------
    _COMPARISONS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
    _SUMS = {"+": "add", "-": "sub"}
    _PRODUCTS = {"*": "mul", "/": "div", "%": "mod"}

    def _parse_expr(self, fb: _FunctionBuilder) -> str:
        left = self._parse_sum(fb)
        token = self._peek()
        if token is not None and token.text in self._COMPARISONS:
            op = self._next().text
            right = self._parse_sum(fb)
            out = fb.temp()
            fb.emit(BinOp(self._COMPARISONS[op], out, left, right))
            return out
        return left

    def _parse_sum(self, fb: _FunctionBuilder) -> str:
        left = self._parse_product(fb)
        while True:
            token = self._peek()
            if token is None or token.text not in self._SUMS:
                return left
            op = self._next().text
            right = self._parse_product(fb)
            out = fb.temp()
            fb.emit(BinOp(self._SUMS[op], out, left, right))
            left = out

    def _parse_product(self, fb: _FunctionBuilder) -> str:
        left = self._parse_atom(fb)
        while True:
            token = self._peek()
            if token is None or token.text not in self._PRODUCTS:
                return left
            op = self._next().text
            right = self._parse_atom(fb)
            out = fb.temp()
            fb.emit(BinOp(self._PRODUCTS[op], out, left, right))
            left = out

    def _parse_atom(self, fb: _FunctionBuilder) -> str:
        token = self._next()
        if token.text == "(":
            value = self._parse_expr(fb)
            self._expect(")")
            return value
        if token.text == "-":
            value = self._parse_atom(fb)
            zero = fb.temp()
            out = fb.temp()
            fb.emit(Const(zero, 0))
            fb.emit(BinOp("sub", out, zero, value))
            return out
        if token.text == "load":
            self._expect("(")
            addr = self._parse_expr(fb)
            self._expect(")")
            out = fb.temp()
            fb.emit(Load(out, addr))
            return out
        if token.kind == "number":
            out = fb.temp()
            fb.emit(Const(out, int(token.text)))
            return out
        if token.kind == "name":
            if self._accept("("):
                args: list[str] = []
                if not self._accept(")"):
                    while True:
                        args.append(self._parse_expr(fb))
                        if self._accept(")"):
                            break
                        self._expect(",")
                out = fb.temp()
                fb.emit(Call(out, token.text, tuple(args)))
                return out
            fb.require(token.text)
            return token.text
        raise MiniCError(f"unexpected token {token.text!r} in expression")


# -- public API --------------------------------------------------------------
def parse_minic(source: str) -> Program:
    """Parse MiniC source into a VM program (entry = first function)."""
    return _Parser(_lex(source), source).parse_program()


def compile_minic(source: str):
    """Parse and compile MiniC source; returns a
    :class:`~repro.popcorn.vm.CompiledProgram` ready for the VM."""
    from repro.popcorn.vm import compile_program

    program = parse_minic(source)
    # Validate call targets now that every function is known.
    for fn in program.functions.values():
        for instr in fn.body:
            if isinstance(instr, Call) and instr.function not in program.functions:
                raise MiniCError(
                    f"{fn.name}: call to undefined function {instr.function!r}"
                )
    return compile_program(program)
