"""Migration points and liveness metadata.

A migration point is a program location where memory state is equivalent
across ISAs (Section 2), so execution may hop between them. For each
point, the compiler's liveness pass records the live variables and where
each one lives (register or stack slot) *per ISA* — the metadata the
run-time state transformer consumes.

:func:`allocate_locations` is the reference allocator used by the
instrumentation step: it deterministically maps live variables to each
ISA's callee-saved registers first, spilling the rest to aligned stack
slots, which yields genuinely different layouts on x86-64 (5 callee-saved
registers) and AArch64 (10) — so the round-trip transformation tests are
not vacuous.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable

from repro.popcorn.abi import ISADef, isa_def

__all__ = [
    "CType",
    "Location",
    "RegisterLoc",
    "StackLoc",
    "LiveVar",
    "MigrationPoint",
    "LivenessMetadata",
    "allocate_locations",
    "MetadataError",
]


class MetadataError(Exception):
    """Raised for malformed or incomplete liveness metadata."""


class CType:
    """The C types the transformer understands, with wire encodings."""

    I32 = "i32"
    I64 = "i64"
    F32 = "f32"
    F64 = "f64"
    PTR = "ptr"

    ALL = (I32, I64, F32, F64, PTR)

    _PACK = {I32: "<i", I64: "<q", F32: "<f", F64: "<d", PTR: "<Q"}
    _SIZE = {I32: 4, I64: 8, F32: 4, F64: 8, PTR: 8}

    @classmethod
    def size(cls, ctype: str) -> int:
        try:
            return cls._SIZE[ctype]
        except KeyError:
            raise MetadataError(f"unknown C type {ctype!r}") from None

    @classmethod
    def pack(cls, ctype: str, value) -> bytes:
        """Encode a Python value into the 8-byte slot representation."""
        raw = struct.pack(cls._PACK[ctype], value)
        return raw.ljust(8, b"\x00")

    @classmethod
    def unpack(cls, ctype: str, raw: bytes):
        """Decode a slot back into a Python value."""
        size = cls.size(ctype)
        return struct.unpack(cls._PACK[ctype], raw[:size])[0]

    @classmethod
    def is_float(cls, ctype: str) -> bool:
        return ctype in (cls.F32, cls.F64)


class Location:
    """Where a live variable resides at a migration point."""


@dataclass(frozen=True)
class RegisterLoc(Location):
    register: str

    def __str__(self) -> str:
        return f"%{self.register}"


@dataclass(frozen=True)
class StackLoc(Location):
    """Offset (bytes, positive, 8-aligned) below the frame base."""

    offset: int

    def __post_init__(self):
        if self.offset < 0 or self.offset % 8:
            raise MetadataError(f"bad stack offset {self.offset}")

    def __str__(self) -> str:
        return f"[fp-{self.offset}]"


@dataclass(frozen=True)
class LiveVar:
    """A variable live across a migration point."""

    name: str
    ctype: str
    locations: dict[str, Location] = field(hash=False)

    def __post_init__(self):
        if self.ctype not in CType.ALL:
            raise MetadataError(f"{self.name}: unknown C type {self.ctype!r}")

    def location(self, isa: str) -> Location:
        try:
            return self.locations[isa]
        except KeyError:
            raise MetadataError(f"{self.name}: no location for ISA {isa!r}") from None


@dataclass(frozen=True)
class MigrationPoint:
    """One cross-ISA-equivalent program location."""

    point_id: int
    function: str
    offset: int  # instruction offset within the function (informational)
    live_vars: tuple[LiveVar, ...]

    def frame_bytes(self, isa: str) -> int:
        """Stack-frame footprint of the spilled live variables on ``isa``."""
        offsets = [
            loc.offset
            for var in self.live_vars
            if isinstance(loc := var.location(isa), StackLoc)
        ]
        return max(offsets, default=0) + (8 if offsets else 0)


class LivenessMetadata:
    """All migration points of one binary, indexed for the run-time."""

    def __init__(self, points: Iterable[MigrationPoint]):
        self.points: dict[int, MigrationPoint] = {}
        self.by_function: dict[str, list[MigrationPoint]] = {}
        for point in points:
            if point.point_id in self.points:
                raise MetadataError(f"duplicate migration point id {point.point_id}")
            self.points[point.point_id] = point
            self.by_function.setdefault(point.function, []).append(point)

    def __len__(self) -> int:
        return len(self.points)

    def point(self, point_id: int) -> MigrationPoint:
        try:
            return self.points[point_id]
        except KeyError:
            raise MetadataError(f"unknown migration point {point_id}") from None

    def points_in(self, function: str) -> list[MigrationPoint]:
        return list(self.by_function.get(function, []))

    def size_bytes(self) -> int:
        """On-disk size of the metadata section (~24 B per live location)."""
        records = sum(
            len(point.live_vars) * len(_isas_of(point)) for point in self.points.values()
        )
        return 64 * len(self.points) + 24 * records


def _isas_of(point: MigrationPoint) -> set[str]:
    isas: set[str] = set()
    for var in point.live_vars:
        isas.update(var.locations)
    return isas


def allocate_locations(
    variables: list[tuple[str, str]],
    isas: Iterable[str] = ("x86_64", "aarch64"),
    reserve_regs: int = 0,
) -> list[LiveVar]:
    """Deterministically place variables in registers/stack per ISA.

    Integer/pointer variables fill each ISA's callee-saved registers
    (minus ``reserve_regs`` held back for the function's own use);
    floats and any overflow land in consecutive 8-byte stack slots.
    """
    defs: dict[str, ISADef] = {isa: isa_def(isa) for isa in isas}
    live_vars = []
    next_reg = {isa: 0 for isa in defs}
    next_slot = {isa: 8 for isa in defs}
    for name, ctype in variables:
        locations: dict[str, Location] = {}
        for isa, abi in defs.items():
            usable = abi.callee_saved[: max(0, len(abi.callee_saved) - reserve_regs)]
            if not CType.is_float(ctype) and next_reg[isa] < len(usable):
                locations[isa] = RegisterLoc(usable[next_reg[isa]])
                next_reg[isa] += 1
            else:
                locations[isa] = StackLoc(next_slot[isa])
                next_slot[isa] += 8
        live_vars.append(LiveVar(name=name, ctype=ctype, locations=locations))
    return live_vars
