"""Quantitative observability for the simulated Xar-Trek deployment.

See :mod:`repro.metrics.core` for the data model (sim-clock counters,
gauges, histograms in a :class:`MetricsRegistry`) and
:mod:`repro.metrics.export` for the deterministic JSON/CSV exporters.
``docs/observability.md`` walks through the wired-in metrics and the
``python -m repro metrics`` CLI.
"""

from repro.metrics.core import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.metrics.export import flatten, to_csv, to_json

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PERCENTILES",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "flatten",
    "to_csv",
    "to_json",
]
