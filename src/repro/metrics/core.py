"""Simulation-time-aware metrics primitives.

The registry is the quantitative sibling of
:class:`~repro.sim.tracing.Tracer`: where the tracer answers *why*
something happened, metrics answer *how much* and *how fast* — "what
was the p99 scheduler round-trip?", "how many decisions picked the
FPGA?", "what fraction of reconfiguration time hid behind CPU work?".

Three metric types, modelled on the Prometheus data model but driven by
the *simulated* clock rather than wall time:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a sampled value with min/max and a time-weighted
  mean (the integral is advanced on every update, so the mean is exact
  for piecewise-constant signals like CPU load);
* :class:`Histogram` — fixed cumulative buckets plus an exact-percentile
  reservoir. Up to ``reservoir_size`` observations percentiles are
  exact; beyond that, Algorithm-R reservoir sampling keeps a uniform
  sample using a generator derived deterministically from the metric
  name (or from the registry's seeded :class:`~repro.sim.RandomStreams`),
  so two runs with the same seed export identical snapshots.

Every metric family supports Prometheus-style labels: declare
``labelnames`` at registration and call :meth:`~Metric.labels` to get
the per-series child. Snapshots order families by name and series by
label value, so exports are byte-stable.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Callable, Optional, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PERCENTILES",
]


class MetricError(Exception):
    """Raised for metric misuse (type clash, bad labels, negative inc)."""


#: Log-ish latency buckets from 10 µs to 100 s — wide enough to span a
#: 50 µs socket hop and a multi-second FPGA reconfiguration.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Percentiles reported in snapshots.
DEFAULT_PERCENTILES: tuple[int, ...] = (50, 90, 95, 99)


def _derived_rng(name: str, seed: int = 0) -> np.random.Generator:
    """A generator derived from a metric name (same recipe as
    :class:`~repro.sim.rng.RandomStreams`): stable across runs and
    independent per metric."""
    digest = hashlib.sha256(f"{seed}/metrics/{name}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class Metric:
    """Shared family/series machinery for all metric types.

    A metric registered with ``labelnames`` is a *family*: readings go
    through :meth:`labels`, which returns (creating on first use) the
    child series for one label combination. A metric without labelnames
    is itself the single series.
    """

    kind = "metric"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        clock: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._clock = clock or (lambda: 0.0)
        self.labelvalues: tuple[str, ...] = ()
        self._children: dict[tuple[str, ...], "Metric"] = {}

    # -- label handling ----------------------------------------------------
    def labels(self, **labelvalues: Any) -> "Metric":
        """The child series for one label combination (created lazily)."""
        if not self.labelnames:
            raise MetricError(f"{self.name} was registered without labels")
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name} needs labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            child.labelvalues = key
            self._children[key] = child
        return child

    def _make_child(self) -> "Metric":
        return type(self)(self.name, self.help, clock=self._clock)

    def _series(self) -> list["Metric"]:
        """All concrete series, sorted by label values (deterministic)."""
        if self.labelnames:
            return [self._children[key] for key in sorted(self._children)]
        return [self]

    def _check_leaf(self) -> None:
        if self.labelnames:
            raise MetricError(
                f"{self.name} has labels {self.labelnames}; use .labels(...)"
            )

    # -- snapshotting ------------------------------------------------------
    def _series_snapshot(self) -> dict[str, Any]:
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """This family's deterministic snapshot (sorted series)."""
        series = []
        for child in self._series():
            entry = {"labels": dict(zip(self.labelnames, child.labelvalues))}
            entry.update(child._series_snapshot())
            series.append(entry)
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": series,
        }


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=(), clock=None):
        super().__init__(name, help, labelnames, clock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        if self.labelnames:
            return sum(child._value for child in self._children.values())
        return self._value

    def as_dict(self) -> dict[tuple[str, ...], float]:
        """Label values -> count, sorted (for thin dict views)."""
        return {key: self._children[key]._value for key in sorted(self._children)}

    def _series_snapshot(self) -> dict[str, Any]:
        return {"value": self._value}


class Gauge(Metric):
    """A sampled value with min/max and an exact time-weighted mean.

    Two modes: *push* (the default — call :meth:`set`/:meth:`inc` on
    every change, the integral advances per update) and *pull* (call
    :meth:`bind_sampler` once with a callable owning equivalent running
    aggregates; the series is derived at read time and the per-change
    cost disappears from the instrumented hot path).
    """

    kind = "gauge"

    def __init__(self, name, help="", labelnames=(), clock=None):
        super().__init__(name, help, labelnames, clock)
        self._value = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._updates = 0
        self._t0: Optional[float] = None  # time of the first set
        self._last_t = 0.0
        self._integral = 0.0
        self._sampler: Optional[Callable[[], dict[str, Any]]] = None

    def bind_sampler(self, sampler: Callable[[], dict[str, Any]]) -> None:
        """Make this series pull-based: ``sampler()`` must return a dict
        with ``value``, ``min``, ``max``, ``time_weighted_mean`` and
        ``updates`` keys (e.g.
        :meth:`repro.hardware.sharing.FairShareServer.load_snapshot`).
        Mixing with push updates is rejected — two owners for the same
        timeline cannot stay exact.
        """
        self._check_leaf()
        if self._updates:
            raise MetricError(
                f"{self.name}: cannot bind a sampler after push updates"
            )
        self._sampler = sampler

    def set(self, value: float) -> None:
        self._check_leaf()
        if self._sampler is not None:
            raise MetricError(
                f"{self.name}: gauge is sampler-bound; its value is pulled"
            )
        now = self._clock()
        if self._t0 is None:
            self._t0 = now
        else:
            self._integral += self._value * (now - self._last_t)
        self._last_t = now
        self._value = float(value)
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self._updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        self._check_leaf()
        if self._sampler is not None:
            return float(self._sampler()["value"])
        return self._value

    def time_weighted_mean(self) -> float:
        """Mean value over [first set, now], exact for step signals."""
        self._check_leaf()
        if self._sampler is not None:
            return float(self._sampler()["time_weighted_mean"])
        if self._t0 is None:
            return 0.0
        now = self._clock()
        elapsed = now - self._t0
        if elapsed <= 0:
            return self._value
        integral = self._integral + self._value * (now - self._last_t)
        return integral / elapsed

    def aggregates(self) -> dict[str, Any]:
        """Full series view — ``value``/``min``/``max``/
        ``time_weighted_mean``/``updates`` — for callers that feed a
        gauge into a load snapshot (e.g. FPGA occupancy)."""
        self._check_leaf()
        return self._series_snapshot()

    def _series_snapshot(self) -> dict[str, Any]:
        if self._sampler is not None:
            sample = self._sampler()
            return {
                "value": float(sample["value"]),
                "min": float(sample["min"]),
                "max": float(sample["max"]),
                "time_weighted_mean": float(sample["time_weighted_mean"]),
                "updates": int(sample["updates"]),
            }
        return {
            "value": self._value,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "time_weighted_mean": self.time_weighted_mean(),
            "updates": self._updates,
        }


class Histogram(Metric):
    """Fixed cumulative buckets plus an exact-percentile reservoir."""

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        labelnames=(),
        clock=None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir_size: int = 4096,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name, help, labelnames, clock)
        if reservoir_size < 1:
            raise MetricError(f"{name}: reservoir_size must be >= 1")
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise MetricError(f"{name}: need at least one bucket bound")
        self.reservoir_size = reservoir_size
        self._rng = rng
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # + overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._reservoir: list[float] = []

    def _make_child(self) -> "Histogram":
        return Histogram(
            self.name,
            self.help,
            clock=self._clock,
            buckets=self.buckets,
            reservoir_size=self.reservoir_size,
            rng=self._rng,
        )

    def observe(self, value: float) -> None:
        self._check_leaf()
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self._bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            # Algorithm R: keep a uniform sample, deterministically.
            if self._rng is None:
                self._rng = _derived_rng(self.name)
            slot = int(self._rng.integers(0, self._count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def count(self) -> int:
        if self.labelnames:
            return sum(child._count for child in self._children.values())
        return self._count

    @property
    def sum(self) -> float:
        if self.labelnames:
            return sum(child._sum for child in self._children.values())
        return self._sum

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100), nearest-rank on the reservoir.

        Exact while fewer than ``reservoir_size`` values were observed.
        """
        self._check_leaf()
        if not 0 <= q <= 100:
            raise MetricError(f"percentile {q} out of range [0, 100]")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = max(0, int(np.ceil(q / 100.0 * len(ordered))) - 1)
        return ordered[rank]

    def _series_snapshot(self) -> dict[str, Any]:
        cumulative: list[list[Any]] = []
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            cumulative.append([bound, running])
        cumulative.append(["+Inf", running + self._bucket_counts[-1]])
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "buckets": cumulative,
            "percentiles": {
                f"p{q}": self.percentile(q) for q in DEFAULT_PERCENTILES
            },
        }


class MetricsRegistry:
    """A named collection of metric families sharing one (sim) clock.

    Registration is idempotent: asking for an existing name returns the
    existing family, provided the type and label names match — so
    loosely coupled components can share a series without plumbing
    references around.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, rng=None):
        """``rng`` is an optional :class:`~repro.sim.RandomStreams`;
        histogram reservoirs draw from ``rng.stream("metrics/<name>")``
        so reservoir downsampling replays identically under the
        simulation seed."""
        self._clock = clock or (lambda: 0.0)
        self._rng = rng
        self._families: dict[str, Metric] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulator clock (used by gauges' time weighting)."""
        self._clock = clock
        for family in self._families.values():
            family._clock = clock
            for child in family._children.values():
                child._clock = clock

    # -- registration ------------------------------------------------------
    def _register(self, cls, name: str, help: str, labelnames, **kwargs) -> Metric:
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(name, help, labelnames, clock=self._clock, **kwargs)
        self._families[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir_size: int = 4096,
    ) -> Histogram:
        rng = self._rng.stream(f"metrics/{name}") if self._rng is not None else None
        return self._register(
            Histogram,
            name,
            help,
            labelnames,
            buckets=buckets,
            reservoir_size=reservoir_size,
            rng=rng,
        )

    # -- queries -----------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._families.get(name)

    def names(self) -> list[str]:
        return sorted(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    # -- export ------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Every family's snapshot, sorted by name (byte-stable)."""
        return {
            "metrics": [
                self._families[name].snapshot() for name in sorted(self._families)
            ]
        }

    def clear(self) -> None:
        self._families.clear()
