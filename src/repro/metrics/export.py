"""Deterministic JSON/CSV exporters for metrics snapshots.

Both exporters accept either a :class:`~repro.metrics.MetricsRegistry`
or an already-taken snapshot dict, and emit byte-stable output (sorted
keys, sorted series) so "same seed => identical export" is testable
with plain string equality.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Union

from repro.metrics.core import MetricsRegistry

__all__ = ["to_json", "to_csv", "flatten"]


def _as_snapshot(source: Union[MetricsRegistry, dict[str, Any]]) -> dict[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def to_json(source: Union[MetricsRegistry, dict[str, Any]], indent: int = 2) -> str:
    """The snapshot as deterministic JSON (sorted keys)."""
    return json.dumps(_as_snapshot(source), indent=indent, sort_keys=True)


def flatten(source: Union[MetricsRegistry, dict[str, Any]]) -> list[tuple[str, str, str, str, float]]:
    """Flat ``(name, type, labels, field, value)`` rows, sorted.

    Histogram buckets become ``bucket_le_<bound>`` fields and
    percentiles ``p50``/``p90``/... — one scalar per row, which is what
    a spreadsheet or a regression diff wants.
    """
    rows: list[tuple[str, str, str, str, float]] = []
    for family in _as_snapshot(source)["metrics"]:
        for series in family["series"]:
            labels = ";".join(
                f"{k}={series['labels'][k]}" for k in sorted(series["labels"])
            )
            for field, value in sorted(series.items()):
                if field == "labels":
                    continue
                if field == "buckets":
                    for bound, count in value:
                        rows.append(
                            (family["name"], family["type"], labels,
                             f"bucket_le_{bound}", float(count))
                        )
                elif field == "percentiles":
                    for pname in sorted(value):
                        rows.append(
                            (family["name"], family["type"], labels,
                             pname, float(value[pname]))
                        )
                else:
                    rows.append(
                        (family["name"], family["type"], labels,
                         field, float(value))
                    )
    return rows


def to_csv(source: Union[MetricsRegistry, dict[str, Any]]) -> str:
    """The snapshot as deterministic CSV (one scalar per row)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["name", "type", "labels", "field", "value"])
    for row in flatten(source):
        writer.writerow(row)
    return out.getvalue()
