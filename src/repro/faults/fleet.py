"""Per-node fault plans for fleet deployments.

A :class:`FleetFaultPlan` maps node index -> :class:`FaultPlan`; arming
it creates one :class:`FaultInjector` per targeted node's runtime, so
every existing fault kind works unchanged at fleet scale — a
``server_outage`` takes one node's scheduler daemon down (and the
router fails its clients over to healthy nodes at their next routing
decision), a ``device_crash`` quarantines one node's card through that
node's own circuit breakers, and so on. Blast radii stay per-node by
construction: nothing here touches the fleet tier or other nodes.

Plans derive per-node seeds from the same
``numpy.random.SeedSequence(seed).spawn(n)`` discipline as the fleet's
platform seeds, so a fleet chaos run replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultPlanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.deployment import FleetDeployment

__all__ = ["FleetFaultPlan", "fleet_fault_seeds"]


def fleet_fault_seeds(seed: int, n_nodes: int) -> list[int]:
    """Per-node fault-plan seeds, independent of the platform seeds
    (same root, different spawn key)."""
    children = np.random.SeedSequence([int(seed), 0xFA17]).spawn(n_nodes)
    return [int(child.generate_state(1)[0]) for child in children]


@dataclass(frozen=True)
class FleetFaultPlan:
    """Node index -> that node's :class:`FaultPlan`."""

    plans: Mapping[int, FaultPlan] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self):
        for index, plan in self.plans.items():
            if not isinstance(index, int) or index < 0:
                raise FaultPlanError(
                    f"fleet fault plan keys must be node indexes >= 0, got {index!r}"
                )
            if not isinstance(plan, FaultPlan):
                raise FaultPlanError(
                    f"node {index}: expected a FaultPlan, got {type(plan).__name__}"
                )

    def __len__(self) -> int:
        return sum(len(plan) for plan in self.plans.values())

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for plan in self.plans.values():
            for kind, count in plan.counts_by_kind().items():
                counts[kind] = counts.get(kind, 0) + count
        return dict(sorted(counts.items()))

    def plan_for(self, node_index: int) -> FaultPlan:
        return self.plans.get(node_index, FaultPlan.empty())

    def arm(self, fleet: "FleetDeployment") -> dict[int, FaultInjector]:
        """One fresh injector per targeted node; returns them by index."""
        injectors: dict[int, FaultInjector] = {}
        for index in sorted(self.plans):
            if index >= len(fleet.nodes):
                raise FaultPlanError(
                    f"fleet fault plan targets node {index}, but the fleet "
                    f"has only {len(fleet.nodes)} nodes"
                )
            injector = FaultInjector(fleet.nodes[index].runtime)
            injector.arm(self.plans[index])
            injectors[index] = injector
        return injectors

    @classmethod
    def generate(
        cls,
        seed: int,
        n_nodes: int,
        horizon_s: float,
        kernels=(),
        fault_fraction: float = 0.5,
        **plan_kwargs,
    ) -> "FleetFaultPlan":
        """A seeded plan striking ``fault_fraction`` of the nodes.

        The first ``ceil(fault_fraction * n_nodes)`` node indexes each
        get their own :meth:`FaultPlan.generate` with a
        SeedSequence-derived seed; extra keyword arguments tune every
        per-node plan identically (counts, durations, factors).
        """
        if not 0.0 < fault_fraction <= 1.0:
            raise FaultPlanError(
                f"fault_fraction must be in (0, 1], got {fault_fraction}"
            )
        n_faulted = min(n_nodes, max(1, round(n_nodes * fault_fraction)))
        seeds = fleet_fault_seeds(seed, n_nodes)
        plans = {
            index: FaultPlan.generate(
                seeds[index], horizon_s, kernels=kernels, **plan_kwargs
            )
            for index in range(n_faulted)
        }
        return cls(plans=plans, seed=int(seed))

    @classmethod
    def empty(cls) -> "FleetFaultPlan":
        return cls()
