"""Arming a :class:`~repro.faults.plan.FaultPlan` against a deployment.

The injector translates plan entries into concrete actions on the live
simulation objects: arming run/reconfig failure countdowns on the XRT
device and FPGA card, crashing and recovering the card, degrading a
link's bandwidth, and stopping/slowing the scheduler daemon. Every
strike is scheduled on the simulator's own event queue (``call_at``),
so a plan replays identically under a fixed seed — chaos runs are as
deterministic as fault-free ones.

Window kinds schedule their own restoration (recover, full bandwidth,
server restart) at ``spec.end_s``. Counter kinds are *armed* at
``at_s``; the failures themselves fire whenever the next matching
operations run.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan, FaultPlanError, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules one plan's faults against one runtime.

    One injector arms one plan exactly once (re-arming would double
    every fault); build a fresh injector per chaos run. ``fired``
    records the specs in strike order for reports and tests.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self.sim = runtime.platform.sim
        self.metrics = runtime.metrics
        self._m_injected = self.metrics.counter(
            "faults_injected_total",
            "faults armed or fired by the injector, by kind",
            labelnames=("kind",),
        )
        self.plan: Optional[FaultPlan] = None
        self.fired: list[FaultSpec] = []

    def arm(self, plan: FaultPlan, horizon_s: Optional[float] = None) -> None:
        """Schedule every spec in ``plan``; a no-op for the empty plan.

        ``horizon_s``, when given, is the scenario's end of time: a
        spec striking at or past it would arm silently and never fire,
        which is always a plan-authoring bug (the chaos harness passes
        its workload horizon here). ``None`` keeps the historical
        behaviour of trusting the plan.
        """
        if self.plan is not None:
            raise FaultPlanError(
                "this injector already armed a plan; use a fresh injector"
            )
        if horizon_s is not None:
            dead = [spec for spec in plan.specs if spec.at_s >= horizon_s]
            if dead:
                described = ", ".join(
                    f"{spec.kind} at t={spec.at_s}" for spec in dead
                )
                raise FaultPlanError(
                    f"{len(dead)} fault spec(s) lie entirely past the "
                    f"{horizon_s}s scenario horizon and would never fire: "
                    f"{described}"
                )
        self.plan = plan
        for spec in plan.specs:
            if spec.at_s < self.sim.now:
                raise FaultPlanError(
                    f"{spec.kind} at t={spec.at_s} is in the past "
                    f"(now={self.sim.now}); arm the plan before running"
                )
            self.sim.call_at(spec.at_s, lambda spec=spec: self._fire(spec))

    # -- strike dispatch ---------------------------------------------------
    def _fire(self, spec: FaultSpec) -> None:
        handler = getattr(self, f"_fire_{spec.kind}")
        handler(spec)
        self.fired.append(spec)
        self._m_injected.labels(kind=spec.kind).inc(
            spec.count if spec.kind in ("kernel_fault", "reconfig_fault") else 1
        )
        tracer = self.runtime.platform.tracer
        if tracer.enabled:
            tracer.record(
                "faults",
                f"injected {spec.kind} (target={spec.target or '-'}, "
                f"count={spec.count}, duration={spec.duration_s}s)",
                kind=spec.kind,
                target=spec.target,
            )

    def _fire_kernel_fault(self, spec: FaultSpec) -> None:
        self.runtime.xrt.inject_run_failures(spec.target, spec.count)

    def _fire_reconfig_fault(self, spec: FaultSpec) -> None:
        self.runtime.platform.fpga.inject_reconfig_failures(spec.count)

    def _fire_device_crash(self, spec: FaultSpec) -> None:
        fpga = self.runtime.platform.fpga
        fpga.crash()
        self.sim.call_at(spec.end_s, fpga.recover)

    def _fire_link_degrade(self, spec: FaultSpec) -> None:
        link = getattr(self.runtime.platform, spec.target)
        link.set_degradation(spec.factor)
        self.sim.call_at(spec.end_s, lambda: link.set_degradation(1.0))

    def _fire_server_outage(self, spec: FaultSpec) -> None:
        server = self.runtime.server
        server.stop()
        self.sim.call_at(spec.end_s, server.start)

    def _fire_server_slow(self, spec: FaultSpec) -> None:
        server = self.runtime.server
        server.set_reply_delay_factor(spec.factor)
        self.sim.call_at(spec.end_s, lambda: server.set_reply_delay_factor(1.0))
