"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is an ordered set of :class:`FaultSpec` entries —
each one names a *kind* of fault, the simulated instant it strikes, and
its kind-specific parameters. Plans are plain data: they serialize
to/from JSON (for the ``repro chaos`` CLI and for committing regression
plans to the repo), they compare by value, and :meth:`FaultPlan.generate`
derives one deterministically from a seed, so a chaos run is as
replayable as any other seeded experiment in this repository.

The plan says *what goes wrong and when*; arming it against a live
deployment is :class:`~repro.faults.injector.FaultInjector`'s job, and
surviving it is the resilience layer's
(:mod:`repro.faults.resilience`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["FAULT_KINDS", "FaultPlanError", "FaultSpec", "FaultPlan"]


class FaultPlanError(Exception):
    """Raised for malformed fault specs or plan payloads."""


#: Every fault kind the injector knows how to arm.
FAULT_KINDS: tuple[str, ...] = (
    "kernel_fault",      # next `count` runs of kernel `target` fail mid-flight
    "reconfig_fault",    # next `count` FPGA reconfigurations fail after programming
    "device_crash",      # FPGA drops off the bus for `duration_s`, then recovers
    "link_degrade",      # link `target` runs at `factor` of its bandwidth for `duration_s`
    "server_outage",     # scheduler server down for `duration_s`
    "server_slow",       # scheduler replies take `factor` x the socket latency for `duration_s`
)

#: Kinds that describe a [at_s, at_s + duration_s) window.
_WINDOW_KINDS = frozenset({"device_crash", "link_degrade", "server_outage", "server_slow"})

#: Kinds that arm a countdown of discrete failures.
_COUNT_KINDS = frozenset({"kernel_fault", "reconfig_fault"})

#: Valid `target` values for link_degrade.
_LINKS = ("ethernet", "pcie")


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One scheduled fault.

    Field use by kind (unused fields keep their defaults):

    * ``kernel_fault`` — ``target`` is the hardware-kernel name,
      ``count`` the number of runs to fail;
    * ``reconfig_fault`` — ``count`` reconfigurations fail;
    * ``device_crash`` — the card is gone for ``duration_s``;
    * ``link_degrade`` — ``target`` in ``("ethernet", "pcie")``,
      ``factor`` in (0, 1] is the remaining bandwidth fraction;
    * ``server_outage`` — the scheduler daemon is down for ``duration_s``;
    * ``server_slow`` — replies take ``factor`` (> 1) times the socket
      latency for ``duration_s``.
    """

    at_s: float
    kind: str
    target: str = ""
    count: int = 1
    duration_s: float = 0.0
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if not isinstance(self.count, int) or isinstance(self.count, bool):
            raise FaultPlanError(f"{self.kind}: count must be an int, got {self.count!r}")
        if self.at_s < 0:
            raise FaultPlanError(f"{self.kind}: at_s must be >= 0, got {self.at_s}")
        if self.kind in _COUNT_KINDS and self.count < 1:
            raise FaultPlanError(f"{self.kind}: count must be >= 1, got {self.count}")
        if self.kind in _WINDOW_KINDS and self.duration_s <= 0:
            raise FaultPlanError(
                f"{self.kind}: duration_s must be positive, got {self.duration_s}"
            )
        if self.kind == "kernel_fault" and not self.target:
            raise FaultPlanError("kernel_fault: target (kernel name) is required")
        if self.kind == "link_degrade":
            if self.target not in _LINKS:
                raise FaultPlanError(
                    f"link_degrade: target must be one of {_LINKS}, got {self.target!r}"
                )
            if not 0.0 < self.factor <= 1.0:
                raise FaultPlanError(
                    f"link_degrade: factor must be in (0, 1], got {self.factor}"
                )
        if self.kind == "server_slow" and self.factor < 1.0:
            raise FaultPlanError(
                f"server_slow: factor must be >= 1, got {self.factor}"
            )

    @property
    def end_s(self) -> float:
        """When the fault's effect ends (equals ``at_s`` for count kinds)."""
        return self.at_s + self.duration_s

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault spec must be an object, got {payload!r}")
        known = {"at_s", "kind", "target", "count", "duration_s", "factor"}
        extra = set(payload) - known
        if extra:
            raise FaultPlanError(f"fault spec has unknown fields {sorted(extra)}")
        try:
            return cls(
                at_s=float(payload["at_s"]),
                kind=str(payload["kind"]),
                target=str(payload.get("target", "")),
                count=int(payload.get("count", 1)),
                duration_s=float(payload.get("duration_s", 0.0)),
                factor=float(payload.get("factor", 1.0)),
            )
        except KeyError as missing:
            raise FaultPlanError(f"fault spec missing field {missing}") from None


#: JSON schema tag; `from_json` refuses anything else.
_SCHEMA = "xar-trek-fault-plan/1"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of fault specs.

    Specs are stored sorted by strike time (ties broken by the spec's
    remaining fields), so two plans with the same content compare equal
    regardless of construction order and arm in a deterministic
    sequence.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self):
        ordered = tuple(sorted(self.specs))
        object.__setattr__(self, "specs", ordered)
        # Overlapping server outages on the same target are always a
        # plan-authoring bug: the earlier window's restart would revive
        # the daemon mid-way through the later window, so the plan
        # would not describe what actually happens. Specs are sorted by
        # strike time, so adjacent comparison finds every overlap.
        last_outage: dict[str, FaultSpec] = {}
        for spec in ordered:
            if spec.kind != "server_outage":
                continue
            previous = last_outage.get(spec.target)
            if previous is not None and spec.at_s < previous.end_s:
                raise FaultPlanError(
                    f"server_outage windows overlap: "
                    f"[{previous.at_s}, {previous.end_s}) and "
                    f"[{spec.at_s}, {spec.end_s}); merge them into one "
                    "window or separate them in time"
                )
            last_outage[spec.target] = spec

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def horizon_s(self) -> float:
        """Time after which no armed fault effect remains scheduled."""
        return max((spec.end_s for spec in self.specs), default=0.0)

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for spec in self.specs:
            counts[spec.kind] = counts.get(spec.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        payload: dict = {"schema": _SCHEMA, "specs": [s.to_dict() for s in self.specs]}
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault plan must be an object, got {payload!r}")
        schema = payload.get("schema")
        if schema != _SCHEMA:
            raise FaultPlanError(
                f"fault plan has schema {schema!r}, expected {_SCHEMA!r}"
            )
        specs = payload.get("specs", [])
        if not isinstance(specs, list):
            raise FaultPlanError("fault plan 'specs' must be a list")
        seed = payload.get("seed")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in specs),
            seed=int(seed) if seed is not None else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def to_file(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- generation --------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_s: float,
        kernels: Sequence[str] = (),
        kernel_faults: int = 4,
        reconfig_faults: int = 2,
        device_crashes: int = 1,
        crash_duration_s: float = 3.0,
        link_degrades: int = 1,
        degrade_duration_s: float = 5.0,
        degrade_factor: float = 0.25,
        server_outages: int = 1,
        outage_duration_s: float = 2.0,
        server_slowdowns: int = 1,
        slow_duration_s: float = 2.0,
        slow_factor: float = 50.0,
    ) -> "FaultPlan":
        """A seeded random plan over ``[0, horizon_s)``.

        Strike times are drawn from an RNG derived only from ``seed``,
        so the same arguments always yield the same plan — the chaos
        harness's replay-determinism rests on this. ``kernels`` feeds
        the kernel_fault targets (round-robin over the shuffled list);
        with no kernels given, no kernel faults are emitted.
        """
        if horizon_s <= 0:
            raise FaultPlanError(f"horizon_s must be positive, got {horizon_s}")
        rng = np.random.default_rng(seed)
        specs: list[FaultSpec] = []

        def strike() -> float:
            return round(float(rng.uniform(0.0, horizon_s)), 6)

        kernel_pool = list(kernels)
        if kernel_pool:
            rng.shuffle(kernel_pool)
            for index in range(kernel_faults):
                specs.append(
                    FaultSpec(
                        at_s=strike(),
                        kind="kernel_fault",
                        target=kernel_pool[index % len(kernel_pool)],
                        count=int(rng.integers(1, 4)),
                    )
                )
        for _ in range(reconfig_faults):
            specs.append(FaultSpec(at_s=strike(), kind="reconfig_fault",
                                   count=int(rng.integers(1, 3))))
        for _ in range(device_crashes):
            specs.append(FaultSpec(at_s=strike(), kind="device_crash",
                                   duration_s=crash_duration_s))
        for _ in range(link_degrades):
            specs.append(
                FaultSpec(
                    at_s=strike(),
                    kind="link_degrade",
                    target=_LINKS[int(rng.integers(len(_LINKS)))],
                    duration_s=degrade_duration_s,
                    factor=degrade_factor,
                )
            )
        for _ in range(server_outages):
            specs.append(FaultSpec(at_s=strike(), kind="server_outage",
                                   duration_s=outage_duration_s))
        for _ in range(server_slowdowns):
            specs.append(FaultSpec(at_s=strike(), kind="server_slow",
                                   duration_s=slow_duration_s, factor=slow_factor))
        return cls(specs=tuple(specs), seed=int(seed))

    @classmethod
    def empty(cls) -> "FaultPlan":
        """The zero-fault plan (arming it must be a behavioural no-op)."""
        return cls()
