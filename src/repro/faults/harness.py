"""The chaos harness: run a fleet-scale workload under a fault plan.

The contract under test is the paper's transparency promise taken to
its robustness limit: **under any seeded finite-fault plan, every
invocation still completes, and every run's observable result is
identical to the fault-free run** — only *where* calls executed (and
how long they took) may differ, because retries and x86 fallbacks are
allowed.

:func:`run_chaos` therefore runs the same seeded scale_stress-shaped
workload twice — once fault-free as the baseline, once with the plan
armed — and diffs the outcomes record by record. The resulting
:class:`ChaosReport` carries the completion rate (must be 1.0), the
fallback mix, retry/quarantine counts, and the chaos leg's events/sec.
Both ``repro chaos`` (the CLI) and the ``chaos_stress`` wall-clock
scenario are thin wrappers over it.

The two legs are fully independent (each builds its own runtime and
simulator from the same seed), so ``jobs > 1`` runs them concurrently
in two processes of the persistent sweep worker pool — roughly halving
harness wall time on a multi-core host with per-leg results unchanged
(each leg is a pure function of its arguments either way).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResilienceConfig

__all__ = ["BrownoutCriteria", "ChaosReport", "default_plan", "run_chaos"]

#: Workload shape (mirrors the scale_stress bench scenario).
_QUICK_CLIENTS, _QUICK_BACKGROUND = 250, 25
_FULL_CLIENTS, _FULL_BACKGROUND = 1000, 50
_CALLS_PER_CLIENT = 3
#: Client start times are staggered over [0, 30) s (scale_stress shape);
#: default plans strike inside the busy window that follows.
_DEFAULT_HORIZON_S = 45.0


def default_plan(seed: int) -> FaultPlan:
    """The generated plan ``repro chaos`` uses when none is given:
    every fault kind at least once, aimed at the paper benchmarks'
    hardware kernels, deterministic in ``seed``."""
    from repro.workloads import PAPER_BENCHMARKS, profile_for

    kernels = sorted(
        {
            profile_for(app).kernel_name
            for app in PAPER_BENCHMARKS
            if profile_for(app).kernel_name
        }
    )
    return FaultPlan.generate(seed=seed, horizon_s=_DEFAULT_HORIZON_S, kernels=kernels)


@dataclass(frozen=True)
class BrownoutCriteria:
    """Acceptance criteria for a chaos run in *brownout mode*.

    The classic chaos contract (``completion_rate == 1.0``) makes
    graceful degradation unrepresentable: a run that deliberately
    sheds 20% of a flash crowd to protect the other 80% would "fail".
    Brownout mode replaces it with the SLO-shaped contract:

    * goodput (fraction of clients fully served) >= ``goodput_floor``;
    * every shed client is *explicitly accounted* (carries a shed
      reason) — zero clients may simply vanish;
    * every admitted client's outcome is still bit-identical to the
      fault-free leg (the transparency promise is unchanged for work
      the system accepted).
    """

    goodput_floor: float = 0.5

    def __post_init__(self):
        if not 0.0 <= self.goodput_floor <= 1.0:
            raise ValueError(
                f"goodput_floor must be in [0, 1], got {self.goodput_floor!r}"
            )


@dataclass
class ChaosReport:
    """Everything one chaos run proved (or failed to prove)."""

    seed: int
    clients: int
    background: int
    plan_faults: dict[str, int]
    completed: int
    mismatches: list[str]
    faults_injected: int
    retries: int
    fallbacks: dict[str, int]
    quarantines: int
    goodput: float
    breaker_states: dict[str, str]
    events: int
    sim_seconds: float
    wall_s: float
    #: Checksum lines for the chaos leg (bench-scenario format).
    lines: list[str] = field(default_factory=list)
    #: The fault-free differential leg's simulator totals. ``events``/
    #: ``wall_s`` describe the chaos leg alone; callers that time the
    #: whole harness run (both legs) must add these in, or the reported
    #: events/sec undercounts by roughly half.
    baseline_events: int = 0
    baseline_sim_seconds: float = 0.0
    #: The baseline leg's own wall time (worker-side when parallel).
    baseline_wall_s: float = 0.0
    #: How the legs executed: ``"serial"`` (back-to-back in-process)
    #: or ``"parallel"`` (two pool workers). Never part of the
    #: deterministic payload.
    mode: str = "serial"
    #: Shed accounting (brownout/overload runs): clients cut short by
    #: admission control or deadline expiry, by reason.
    shed: dict[str, int] = field(default_factory=dict)
    #: Clients neither completed nor explicitly shed. Must be 0 in
    #: brownout mode — nobody may simply vanish.
    unaccounted: int = 0
    #: Brownout-mode goodput floor; ``None`` keeps the classic
    #: completion_rate == 1.0 contract.
    brownout_floor: Optional[float] = None
    #: Per-app SLO scores (app -> SLOReport-shaped dict), present when
    #: SLO targets were passed to :func:`run_chaos`.
    slo: dict[str, dict] = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        # Zero clients is a real outcome (empty cohort / everything
        # shed at the gate): report 0.0 rather than a vacuous 1.0.
        return self.completed / self.clients if self.clients else 0.0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ok(self) -> bool:
        """The (possibly brownout-shaped) degradation contract held."""
        if self.brownout_floor is not None:
            return (
                self.completion_rate >= self.brownout_floor
                and self.unaccounted == 0
                and not self.mismatches
            )
        return self.completion_rate == 1.0 and not self.mismatches

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "clients": self.clients,
            "background": self.background,
            "plan_faults": dict(self.plan_faults),
            "completed": self.completed,
            "completion_rate": self.completion_rate,
            "mismatches": list(self.mismatches),
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "fallbacks": dict(self.fallbacks),
            "quarantines": self.quarantines,
            "goodput": round(self.goodput, 6),
            "breaker_states": dict(self.breaker_states),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_seconds": round(self.sim_seconds, 6),
            "wall_s": round(self.wall_s, 6),
            "baseline_wall_s": round(self.baseline_wall_s, 6),
            "mode": self.mode,
            "shed": dict(self.shed),
            "unaccounted": self.unaccounted,
            "brownout_floor": self.brownout_floor,
            "slo": {app: dict(score) for app, score in self.slo.items()},
            "ok": self.ok,
        }

    def to_text(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"chaos {status}: {self.completed}/{self.clients} runs completed "
            f"({self.completion_rate:.1%}), {len(self.mismatches)} result "
            "mismatches vs fault-free baseline",
            f"  plan: {sum(self.plan_faults.values())} faults "
            + (
                ", ".join(f"{kind} x{n}" for kind, n in self.plan_faults.items())
                if self.plan_faults
                else "(empty)"
            ),
            f"  injected: {self.faults_injected} faults -> {self.retries} "
            f"retries, {sum(self.fallbacks.values())} fallbacks, "
            f"{self.quarantines} quarantines (goodput {self.goodput:.1%})",
        ]
        for reason, count in sorted(self.fallbacks.items()):
            if count:
                lines.append(f"    fallback {reason}: {count}")
        if self.brownout_floor is not None:
            lines.append(
                f"  brownout: goodput {self.completion_rate:.1%} vs floor "
                f"{self.brownout_floor:.1%}, {self.shed_total} shed, "
                f"{self.unaccounted} unaccounted"
            )
            for reason, count in sorted(self.shed.items()):
                if count:
                    lines.append(f"    shed {reason}: {count}")
        for app, score in sorted(self.slo.items()):
            verdict = (
                "ok" if not score.get("violations") else
                "+".join(score["violations"])
            )
            lines.append(
                f"  slo {app}: p99={score.get('p99_latency_s')} "
                f"goodput={score.get('goodput')} {verdict}"
            )
        lines.append(
            f"  {self.events} events in {self.wall_s:.2f} s wall "
            f"({self.events_per_sec:,.0f} events/sec, "
            f"{self.sim_seconds:.1f} simulated s)"
        )
        for mismatch in self.mismatches[:10]:
            lines.append(f"  MISMATCH {mismatch}")
        if len(self.mismatches) > 10:
            lines.append(f"  ... and {len(self.mismatches) - 10} more mismatches")
        return "\n".join(lines)


def _run_workload(
    seed: int,
    n_clients: int,
    background: int,
    plan: Optional[FaultPlan],
    config: Optional[ResilienceConfig],
    trace=None,
    horizon_s: Optional[float] = None,
):
    """One scale_stress-shaped run; returns (runtime, records).

    The client mix and stagger are drawn from ``seed`` alone, so the
    baseline and chaos legs issue the *same* workload. With ``trace``
    (a :class:`repro.traffic.Trace`) the workload is the trace instead:
    one client per entry, launched open-loop at its recorded arrival
    time with its recorded session length and deadline — no RNG at
    all, so replay identity is the trace's own. ``horizon_s`` is
    forwarded to the injector's never-fires validation.
    """
    from repro.core import SystemMode, build_system
    from repro.workloads import PAPER_BENCHMARKS

    if trace is not None:
        app_names = sorted({entry.app for entry in trace})
    else:
        app_names = sorted(set(PAPER_BENCHMARKS))
    runtime = build_system(app_names, seed=seed, resilience=config)
    if plan is not None and len(plan):
        FaultInjector(runtime).arm(plan, horizon_s=horizon_s)
    load = runtime.launch_background(background)
    handles = []
    if trace is not None:
        for index, entry in enumerate(trace):
            handles.append(
                runtime.launch(
                    entry.app,
                    seed=seed + index,
                    mode=SystemMode.XAR_TREK,
                    calls=entry.calls,
                    delay_s=entry.arrival_s,
                    deadline_s=entry.deadline_s,
                )
            )
    else:
        pool = tuple(PAPER_BENCHMARKS)
        rng = np.random.default_rng(seed)
        for index in range(n_clients):
            app = pool[int(rng.integers(len(pool)))]
            delay = float(rng.uniform(0.0, 30.0))
            handles.append(
                runtime.launch(
                    app,
                    seed=seed + index,
                    mode=SystemMode.XAR_TREK,
                    calls=_CALLS_PER_CLIENT,
                    delay_s=delay,
                )
            )
    records = runtime.wait_all(handles)
    load.stop()
    return runtime, records


def _record_lines(records) -> list[str]:
    lines = []
    for rec in records:
        line = (
            f"{rec.app},{rec.start_s:.9f},{rec.end_s:.9f},{rec.calls_completed},"
            f"{rec.migrations},{','.join(str(t) for t in rec.targets)}"
        )
        # Shed decisions are part of the replay-stable payload; fully
        # served records keep the historical format byte-for-byte.
        if rec.shed_reason is not None:
            line += f",shed={rec.shed_reason}"
        lines.append(line)
    return lines


@dataclass
class _LegOutcome:
    """One leg's picklable result (what travels back from a worker)."""

    records: list
    events: int
    sim_seconds: float
    wall_s: float
    summary: dict


def _run_leg(args: tuple) -> _LegOutcome:
    """Run one harness leg; the worker entry point for ``jobs > 1``.

    Top-level (picklable) and a pure function of its arguments, so the
    serial path calls it in-process and gets the identical outcome.
    The wall clock is measured leg-side, preserving the "chaos leg
    alone" semantics of :attr:`ChaosReport.wall_s` in both modes.
    """
    seed, n_clients, background, plan, config = args[:5]
    trace = args[5] if len(args) > 5 else None
    horizon_s = args[6] if len(args) > 6 else None
    started = time.perf_counter()
    runtime, records = _run_workload(
        seed, n_clients, background, plan, config, trace, horizon_s
    )
    wall_s = time.perf_counter() - started
    sim = runtime.platform.sim
    return _LegOutcome(
        records=list(records),
        events=sim.events_processed,
        sim_seconds=sim.now,
        wall_s=wall_s,
        summary=runtime.resilience.summary(),
    )


def run_chaos(
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    quick: bool = False,
    config: Optional[ResilienceConfig] = None,
    clients: Optional[int] = None,
    background: Optional[int] = None,
    jobs: Optional[int | str] = None,
    traffic=None,
    brownout: Optional[BrownoutCriteria] = None,
    slo: Sequence = (),
    horizon_s: Optional[float] = None,
) -> ChaosReport:
    """Prove (or disprove) graceful degradation under ``plan``.

    Runs the seeded workload fault-free, then again with the plan
    armed, and compares per-client outcomes: same app, same seed, same
    number of completed calls. ``clients``/``background`` override the
    quick/full workload shape (tests use tiny fleets).

    ``traffic`` (a :class:`repro.traffic.Trace`) replaces the seeded
    workload with open-loop trace replay — one client per entry, with
    per-entry session lengths and deadlines. ``brownout`` switches the
    acceptance criterion to the graceful-degradation contract (see
    :class:`BrownoutCriteria`); shed clients are then accounted, not
    failures. ``slo`` is a sequence of
    :class:`repro.traffic.SLOTarget` scored over the chaos leg's
    records; the per-app scores land in the report (and its checksum
    lines). ``horizon_s`` enables the injector's
    would-never-fire plan validation.

    The two legs are independent, so ``jobs > 1`` (default: the
    ``REPRO_FLEET_JOBS`` env var) runs them concurrently in two
    workers of the persistent sweep pool; per-leg results — and hence
    the report's deterministic payload — are identical to serial.
    """
    from repro.fleet.parallel import resolve_fleet_jobs

    if plan is None:
        plan = default_plan(seed)
    if traffic is not None:
        n_clients = len(traffic)
    else:
        n_clients = clients if clients is not None else (
            _QUICK_CLIENTS if quick else _FULL_CLIENTS
        )
    n_background = background if background is not None else (
        _QUICK_BACKGROUND if quick else _FULL_BACKGROUND
    )

    leg_args = [
        # fault-free baseline
        (seed, n_clients, n_background, None, config, traffic, None),
        # chaos
        (seed, n_clients, n_background, plan, config, traffic, horizon_s),
    ]
    mode = "serial"
    legs = None
    if resolve_fleet_jobs(jobs) > 1:
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments.sweep import _pool_for, shutdown_pool

        pool = _pool_for(2)
        try:
            legs = list(pool.map(_run_leg, leg_args, chunksize=1))
            mode = "parallel"
        except BrokenProcessPool:
            # A worker died; both legs are deterministic, so finish
            # the harness serially instead of failing it.
            shutdown_pool()
            legs = None
    if legs is None:
        legs = [_run_leg(args) for args in leg_args]
    baseline_leg, chaos_leg = legs
    baseline, records = baseline_leg.records, chaos_leg.records

    # Expected session length per client: the trace entry's, or the
    # harness's fixed _CALLS_PER_CLIENT for the seeded workload.
    if traffic is not None:
        expected_calls = [entry.calls for entry in traffic]
    else:
        expected_calls = [_CALLS_PER_CLIENT] * n_clients

    completed = 0
    shed: dict[str, int] = {}
    for rec, expected in zip(records, expected_calls):
        if rec.shed_reason is not None:
            shed[rec.shed_reason] = shed.get(rec.shed_reason, 0) + 1
        elif rec.finished and rec.calls_completed == expected:
            completed += 1
    unaccounted = n_clients - completed - sum(shed.values())

    mismatches = []
    for index, (base, chaos) in enumerate(zip(baseline, records)):
        if (base.app, base.seed) != (chaos.app, chaos.seed):
            mismatches.append(
                f"client {index}: workload diverged "
                f"({base.app}/{base.seed} vs {chaos.app}/{chaos.seed})"
            )
            continue
        if brownout is not None and (
            base.shed_reason is not None or chaos.shed_reason is not None
        ):
            # Brownout mode: shed clients are accounted via `shed`, not
            # diffed — the bit-identity promise covers admitted work.
            continue
        if base.calls_completed != chaos.calls_completed:
            mismatches.append(
                f"client {index} ({chaos.app}): completed "
                f"{chaos.calls_completed} calls, baseline {base.calls_completed}"
            )

    summary = chaos_leg.summary
    lines = [f"chaos_stress:{n_clients}:{n_background}:{len(plan)}"]
    lines.extend(_record_lines(records))
    for reason in sorted(shed):
        lines.append(f"shed:{reason}:{shed[reason]}")

    slo_scores: dict[str, dict] = {}
    if slo:
        from repro.traffic import SLOTracker

        tracker = SLOTracker(slo)
        tracker.observe_all(records)
        for app, report in sorted(tracker.score().items()):
            slo_scores[app] = {
                "clients": report.clients,
                "completed": report.completed,
                "shed": report.shed,
                "deadline_hits": report.deadline_hits,
                "p99_latency_s": report.p99_latency_s,
                "goodput": round(report.goodput, 6),
                "violations": list(report.violations),
            }
        lines.extend(tracker.lines())

    return ChaosReport(
        seed=seed,
        clients=n_clients,
        background=n_background,
        plan_faults=plan.counts_by_kind(),
        completed=completed,
        mismatches=mismatches,
        faults_injected=summary["faults_injected"],
        retries=summary["retries"],
        fallbacks={k: v for k, v in summary["fallbacks"].items() if v},
        quarantines=summary["quarantines"],
        goodput=summary["goodput"],
        breaker_states=summary["breaker_states"],
        events=chaos_leg.events,
        sim_seconds=chaos_leg.sim_seconds,
        wall_s=chaos_leg.wall_s,
        lines=lines,
        baseline_events=baseline_leg.events,
        baseline_sim_seconds=baseline_leg.sim_seconds,
        baseline_wall_s=baseline_leg.wall_s,
        mode=mode,
        shed=shed,
        unaccounted=unaccounted,
        brownout_floor=(
            brownout.goodput_floor if brownout is not None else None
        ),
        slo=slo_scores,
    )
