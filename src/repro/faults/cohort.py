"""Cohort-aware fault targeting.

The fault plans in :mod:`repro.faults.plan` speak in terms of the live
deployment ("the next N runs of kernel K fail", "the card is gone for
this window"). The cohort-vectorized client model
(:mod:`repro.core.cohort`) has no live kernel runs to intercept — its
clients are rows in numpy arrays — so chaos must be resolved *ahead of
time* to the individual clients it would have struck:

* ``kernel_fault`` — the first ``count`` clients (in arrival order,
  ties broken by cohort then client index) whose application uses the
  named kernel and who arrive at or after ``at_s``, faulted on their
  first call;
* ``device_crash`` — every FPGA-capable client arriving inside
  ``[at_s, end_s)``, faulted on every call.

Both resolve to ``(cohort, client, call)`` triples the population
applies when a decision actually chose the FPGA, which mirrors the
injector: a kernel fault that never meets a running kernel is a no-op.
The remaining kinds (``reconfig_fault``, ``link_degrade``,
``server_outage``, ``server_slow``) perturb machinery the open-loop
cohort model deliberately does not simulate and are ignored here; the
chaos harness still exercises them through the per-client runtime.

Resolution uses :func:`repro.core.cohort.sample_arrivals`, so the
targeted clients are exactly the ones the population will simulate —
no population object needs to exist yet.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.cohort import CohortSpec, sample_arrivals
from repro.faults.plan import FaultPlan
from repro.thresholds import ThresholdTable
from repro.workloads import profile_for

__all__ = ["resolve_cohort_faults"]

#: Fault kinds this resolver can map onto cohort clients.
COHORT_FAULT_KINDS = ("kernel_fault", "device_crash")


def resolve_cohort_faults(
    plan: FaultPlan,
    specs: Iterable[CohortSpec],
    thresholds: ThresholdTable,
) -> frozenset[tuple[int, int, int]]:
    """Map ``plan`` onto the clients of ``specs``.

    Returns the ``(cohort, client, call)`` triples to pass as
    ``fault_targets`` to :class:`~repro.core.cohort.CohortPopulation`.
    Deterministic: same plan + specs -> same triples.
    """
    specs = tuple(specs)
    cohorts = []
    for index, spec in enumerate(specs):
        entry = thresholds.entry(spec.app)
        profile = profile_for(spec.app)
        calls = spec.calls if spec.calls is not None else profile.calls_per_run
        cohorts.append(
            {
                "index": index,
                "kernel": entry.kernel_name if profile.fpga_capable else "",
                "calls": calls,
                "arrivals": sample_arrivals(spec),
            }
        )

    targets: set[tuple[int, int, int]] = set()
    for fault in plan:
        if fault.kind == "kernel_fault":
            targets.update(_kernel_fault_targets(fault, cohorts))
        elif fault.kind == "device_crash":
            targets.update(_device_crash_targets(fault, cohorts))
    return frozenset(targets)


def _kernel_fault_targets(fault, cohorts) -> Sequence[tuple[int, int, int]]:
    candidates = []
    for cohort in cohorts:
        if cohort["kernel"] != fault.target:
            continue
        for client, arrival in enumerate(cohort["arrivals"]):
            if arrival >= fault.at_s:
                candidates.append((float(arrival), cohort["index"], client))
    candidates.sort()
    return [
        (cohort_index, client, 0)
        for (_arrival, cohort_index, client) in candidates[: fault.count]
    ]


def _device_crash_targets(fault, cohorts) -> Sequence[tuple[int, int, int]]:
    struck = []
    for cohort in cohorts:
        if not cohort["kernel"]:
            continue
        for client, arrival in enumerate(cohort["arrivals"]):
            if fault.at_s <= arrival < fault.end_s:
                struck.extend(
                    (cohort["index"], client, call)
                    for call in range(cohort["calls"])
                )
    return struck
