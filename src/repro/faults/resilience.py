"""Resilience policies: retry budgets, circuit breakers, local fallback.

Xar-Trek's value proposition is that an invocation can always run
*somewhere*; this module holds the policy state that makes the runtime
deliver on that under injected faults:

* a per-invocation **retry budget** with exponential backoff for FPGA
  kernel runs (:meth:`ResiliencePolicy.backoff_s`), after which the
  application falls back to x86 transparently;
* a per-target **circuit breaker** (:class:`CircuitBreaker`) that
  quarantines a repeatedly failing kernel or the device itself for a
  cooldown, steering Algorithm 2 decisions away from it;
* **scheduler-client timeouts** (``request_timeout_s``) with a local
  x86 fallback decision when the scheduler daemon is down or slow.

All knobs live in :class:`ResilienceConfig`. The defaults are always
on: with zero faults none of the machinery fires, so fault-free runs
are byte-identical to a build without it.

Observability: ``retries_total{kernel}``, ``fallbacks_total{reason}``,
``quarantines_total{target}`` counters and a *pull-mode*
``circuit_breaker_state{target}`` gauge (0 = closed, 0.5 = half-open,
1 = open; the breaker maintains the gauge-shaped aggregates
incrementally and the registry samples them at snapshot time, matching
the ``cpu_load`` pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.metrics import MetricsRegistry

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FALLBACK_REASONS",
    "OverloadConfig",
    "OverloadGuard",
    "ResilienceConfig",
    "ResiliencePolicy",
    "SHED_REASONS",
]

#: Every reason `fallbacks_total` is labeled with.
FALLBACK_REASONS: tuple[str, ...] = (
    "kernel_fault",       # retry budget exhausted on mid-flight run faults
    "kernel_absent",      # scheduler race: kernel not resident at call time
    "quarantined",        # circuit breaker open for the kernel
    "configure_failed",   # ALWAYS_FPGA synchronous configuration failed
    "scheduler_timeout",  # no reply within request_timeout_s
    "scheduler_down",     # scheduler refused/failed the request
)

#: Every reason `shed_total` is labeled with. The first three are
#: admission-time decisions by the :class:`OverloadGuard`; the last is
#: the client-side exit when a deadline expires mid-session.
SHED_REASONS: tuple[str, ...] = (
    "brownout",           # ladder at SHED: refusing all new admissions
    "queue_full",         # bounded admission queue at capacity
    "deadline",           # queueing delay already forfeits the deadline
    "deadline_expired",   # admitted, but the deadline passed mid-run
)


@dataclass(frozen=True)
class OverloadConfig:
    """Admission-control and brownout-ladder knobs (all load counts are
    the scheduler's x86 process-count view, the same quantity Algorithm
    2 thresholds are written against).

    The ladder is ``full -> x86-only -> shed`` with hysteresis: each
    rung engages at its ``*_enter_load`` and only releases once the
    load falls back to its ``*_exit_load``, so a load hovering around a
    boundary cannot flap the service mode every request.
    """

    #: Requests allowed to wait in the scheduler's admission queue; the
    #: next one sheds with reason "queue_full".
    admission_queue_limit: int = 64
    #: x86-only rung: stop steering work at the accelerators (their
    #: occupancy is what melts first) but keep admitting.
    x86_only_enter_load: float = 24.0
    x86_only_exit_load: float = 16.0
    #: Shed rung: refuse all new admissions until the load drains.
    shed_enter_load: float = 48.0
    shed_exit_load: float = 32.0
    #: Safety margin for deadline-aware shedding: a request is shed
    #: when ``now + estimate + margin`` already passes its deadline.
    deadline_margin_s: float = 0.0
    #: Load-proportional completion-time estimate for deadline-aware
    #: shedding: each unit of x86 load adds this many seconds to the
    #: estimate (processor sharing slows every resident run roughly
    #: linearly in the run count). 0 keeps the estimate purely
    #: socket-latency based.
    deadline_load_cost_s: float = 0.0

    def __post_init__(self):
        if self.admission_queue_limit < 1:
            raise ValueError("admission_queue_limit must be >= 1")
        if self.x86_only_enter_load <= self.x86_only_exit_load:
            raise ValueError(
                "x86_only_enter_load must exceed x86_only_exit_load "
                "(the hysteresis band must be non-empty)"
            )
        if self.shed_enter_load <= self.shed_exit_load:
            raise ValueError(
                "shed_enter_load must exceed shed_exit_load "
                "(the hysteresis band must be non-empty)"
            )
        if self.shed_enter_load <= self.x86_only_enter_load:
            raise ValueError(
                "shed_enter_load must exceed x86_only_enter_load "
                "(the ladder's rungs must be ordered)"
            )
        if self.deadline_margin_s < 0:
            raise ValueError("deadline_margin_s must be >= 0")
        if self.deadline_load_cost_s < 0:
            raise ValueError("deadline_load_cost_s must be >= 0")


@dataclass(frozen=True)
class ResilienceConfig:
    """Every policy knob in one frozen record (see docs/resilience.md).

    The defaults keep fault-free behaviour bit-identical to the
    pre-resilience runtime: retries, breakers, and timeouts only
    engage when something actually fails or stalls.
    """

    #: Extra FPGA kernel-run attempts per invocation after the first
    #: failure (0 disables retrying: first fault falls back immediately).
    kernel_retry_limit: int = 2
    #: Backoff before retry attempt k: ``backoff_base_s * factor**k``.
    retry_backoff_s: float = 1e-3
    retry_backoff_factor: float = 2.0
    #: Consecutive failures that open a breaker, and how long it stays
    #: open before a half-open trial is allowed.
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 10.0
    #: Client-side scheduler-request timeout; ``None`` disables the
    #: timeout (and with it the local fallback on a slow server).
    request_timeout_s: Optional[float] = 0.02
    #: Background reconfiguration retries after a programming failure.
    reconfig_retry_limit: int = 3
    reconfig_retry_backoff_s: float = 0.25
    #: Overload protection (admission control + brownout ladder).
    #: ``None`` — the default — disables it entirely: no admission
    #: queue bound, no shedding, no new metric families, and behaviour
    #: bit-identical to the pre-overload runtime.
    overload: Optional["OverloadConfig"] = None

    def __post_init__(self):
        if self.kernel_retry_limit < 0:
            raise ValueError("kernel_retry_limit must be >= 0")
        if self.retry_backoff_s < 0 or self.retry_backoff_factor < 1.0:
            raise ValueError("retry backoff must be >= 0 with factor >= 1")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive or None")
        if self.reconfig_retry_limit < 0 or self.reconfig_retry_backoff_s < 0:
            raise ValueError("reconfig retry knobs must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based)."""
        return self.retry_backoff_s * self.retry_backoff_factor ** attempt


class BreakerState:
    """One target's circuit-breaker state machine.

    closed --(threshold consecutive failures)--> open
    open --(cooldown elapses; next allow())--> half-open
    half-open --success--> closed, --failure--> open (fresh cooldown)

    The numeric encoding (closed 0, half-open 0.5, open 1) doubles as a
    gauge series: the state keeps value/min/max/time-weighted-mean
    aggregates incrementally, so :meth:`snapshot` is pull-sampled by
    :meth:`repro.metrics.Gauge.bind_sampler` with no per-transition
    metric writes on the hot path.
    """

    CLOSED, HALF_OPEN, OPEN = "closed", "half-open", "open"
    _VALUE = {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}

    __slots__ = (
        "clock", "threshold", "cooldown_s", "state", "failures",
        "opened_at", "open_count",
        "_t0", "_last_t", "_value", "_min", "_max", "_integral", "_updates",
    )

    def __init__(self, clock: Callable[[], float], threshold: int, cooldown_s: float):
        self.clock = clock
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = BreakerState.CLOSED
        self.failures = 0          # consecutive failures while closed
        self.opened_at = 0.0
        self.open_count = 0        # times the breaker tripped open
        now = clock()
        self._t0 = now
        self._last_t = now
        self._value = 0.0
        self._min = 0.0
        self._max = 0.0
        self._integral = 0.0
        self._updates = 0

    # -- gauge aggregates ---------------------------------------------------
    def _transition(self, state: str) -> None:
        now = self.clock()
        self._integral += self._value * (now - self._last_t)
        self._last_t = now
        self.state = state
        self._value = BreakerState._VALUE[state]
        self._min = min(self._min, self._value)
        self._max = max(self._max, self._value)
        self._updates += 1

    def snapshot(self) -> dict[str, float]:
        """Gauge-shaped view (:meth:`Gauge.bind_sampler` contract)."""
        now = self.clock()
        elapsed = now - self._t0
        integral = self._integral + self._value * (now - self._last_t)
        return {
            "value": self._value,
            "min": self._min,
            "max": self._max,
            "time_weighted_mean": integral / elapsed if elapsed > 0 else self._value,
            "updates": self._updates,
        }

    # -- the state machine --------------------------------------------------
    def allow(self) -> bool:
        """May the caller route work at this target right now?

        While open, flips to half-open (one trial allowed) once the
        cooldown has elapsed.
        """
        if self.state == BreakerState.CLOSED:
            return True
        if self.state == BreakerState.OPEN:
            if self.clock() - self.opened_at >= self.cooldown_s:
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True  # half-open: the trial is in flight

    def record_failure(self) -> bool:
        """Fold in one failure; returns True when this call tripped the
        breaker open (new quarantine)."""
        if self.state == BreakerState.HALF_OPEN:
            # The half-open trial failed: straight back to open.
            self.opened_at = self.clock()
            self.open_count += 1
            self._transition(BreakerState.OPEN)
            return True
        if self.state == BreakerState.OPEN:
            return False
        self.failures += 1
        if self.failures >= self.threshold:
            self.failures = 0
            self.opened_at = self.clock()
            self.open_count += 1
            self._transition(BreakerState.OPEN)
            return True
        return False

    def record_success(self) -> None:
        if self.state == BreakerState.CLOSED:
            self.failures = 0
            return
        # A success in half-open (or a stale success racing the open
        # transition) closes the breaker and resets the failure run.
        self.failures = 0
        self._transition(BreakerState.CLOSED)


class CircuitBreaker:
    """A keyed family of :class:`BreakerState` machines.

    Keys name quarantine targets: ``kernel:<name>`` for hardware
    kernels, ``device:fpga`` for the card as a whole. Each key's state
    is exported as one ``circuit_breaker_state{target}`` series, bound
    lazily on first use so fault-free runs export no breaker series at
    all (keeping existing snapshots unchanged).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        threshold: int,
        cooldown_s: float,
        metrics: Optional[MetricsRegistry] = None,
        on_open: Optional[Callable[[str], None]] = None,
        on_close: Optional[Callable[[str], None]] = None,
    ):
        self._clock = clock
        self._threshold = threshold
        self._cooldown_s = cooldown_s
        self._metrics = metrics
        self._on_open = on_open
        self._on_close = on_close
        self._states: dict[str, BreakerState] = {}

    def _state(self, key: str) -> BreakerState:
        state = self._states.get(key)
        if state is None:
            state = BreakerState(self._clock, self._threshold, self._cooldown_s)
            self._states[key] = state
            if self._metrics is not None:
                self._metrics.gauge(
                    "circuit_breaker_state",
                    "per-target breaker state (0 closed, 0.5 half-open, 1 open)",
                    labelnames=("target",),
                ).labels(target=key).bind_sampler(state.snapshot)
        return state

    def allow(self, key: str) -> bool:
        state = self._states.get(key)
        return True if state is None else state.allow()

    def record_failure(self, key: str) -> bool:
        """Returns True when this failure tripped the breaker open."""
        tripped = self._state(key).record_failure()
        if tripped and self._on_open is not None:
            self._on_open(key)
        return tripped

    def record_success(self, key: str) -> None:
        state = self._states.get(key)
        if state is None:
            return
        was_closed = state.state == BreakerState.CLOSED
        state.record_success()
        if not was_closed and self._on_close is not None:
            # open/half-open -> closed: the target recovered. Listeners
            # use this to re-arm machinery that was disabled while the
            # target was quarantined (e.g. the scheduler's background
            # reconfiguration retry budget).
            self._on_close(key)

    def state_of(self, key: str) -> str:
        state = self._states.get(key)
        return BreakerState.CLOSED if state is None else state.state

    def states(self) -> dict[str, str]:
        return {key: state.state for key, state in sorted(self._states.items())}


class OverloadGuard:
    """The overload-protection state machine: brownout ladder plus the
    bounded, deadline-aware admission queue accounting.

    States are the ladder's rungs — ``full`` (0), ``x86-only`` (1),
    ``shed`` (2) — driven by :meth:`update` from the scheduler's x86
    load with hysteresis per :class:`OverloadConfig`. Like
    :class:`BreakerState`, the numeric encoding doubles as a pull-mode
    gauge (``brownout_state``), and the admission queue depth keeps
    its own gauge-shaped aggregates (``admission_queue_depth``)
    incrementally, sampled at snapshot time. Both families — plus
    ``shed_total{reason}`` — exist only when a guard is constructed,
    so runs without overload protection export exactly the metric set
    they always did.
    """

    FULL, X86_ONLY, SHED = "full", "x86-only", "shed"
    _VALUE = {FULL: 0.0, X86_ONLY: 1.0, SHED: 2.0}

    def __init__(
        self,
        clock: Callable[[], float],
        config: OverloadConfig,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.clock = clock
        self.config = config
        self.state = OverloadGuard.FULL
        self.depth = 0             # requests waiting in the admission queue
        self.transitions = 0       # ladder moves (any direction)
        self._last_load = 0.0      # most recent load fed to update()
        now = clock()
        # brownout_state aggregates
        self._b_t0 = now
        self._b_last_t = now
        self._b_value = 0.0
        self._b_min = 0.0
        self._b_max = 0.0
        self._b_integral = 0.0
        self._b_updates = 0
        # admission_queue_depth aggregates
        self._q_t0 = now
        self._q_last_t = now
        self._q_min = 0.0
        self._q_max = 0.0
        self._q_integral = 0.0
        self._q_updates = 0
        self._shed_children: dict[str, object] = {}
        self._m_shed = None
        if metrics is not None:
            self._m_shed = metrics.counter(
                "shed_total",
                "requests refused by overload protection, by reason",
                labelnames=("reason",),
            )
            metrics.gauge(
                "brownout_state",
                "brownout ladder rung (0 full, 1 x86-only, 2 shed)",
            ).bind_sampler(self._brownout_snapshot)
            metrics.gauge(
                "admission_queue_depth",
                "requests waiting in the scheduler admission queue",
            ).bind_sampler(self._queue_snapshot)

    # -- gauge samplers ------------------------------------------------------
    def _brownout_snapshot(self) -> dict[str, float]:
        now = self.clock()
        elapsed = now - self._b_t0
        integral = self._b_integral + self._b_value * (now - self._b_last_t)
        return {
            "value": self._b_value,
            "min": self._b_min,
            "max": self._b_max,
            "time_weighted_mean": (
                integral / elapsed if elapsed > 0 else self._b_value
            ),
            "updates": self._b_updates,
        }

    def _queue_snapshot(self) -> dict[str, float]:
        now = self.clock()
        depth = float(self.depth)
        elapsed = now - self._q_t0
        integral = self._q_integral + depth * (now - self._q_last_t)
        return {
            "value": depth,
            "min": self._q_min,
            "max": self._q_max,
            "time_weighted_mean": integral / elapsed if elapsed > 0 else depth,
            "updates": self._q_updates,
        }

    # -- the ladder ----------------------------------------------------------
    def _transition(self, state: str) -> None:
        now = self.clock()
        self._b_integral += self._b_value * (now - self._b_last_t)
        self._b_last_t = now
        self.state = state
        self._b_value = OverloadGuard._VALUE[state]
        self._b_min = min(self._b_min, self._b_value)
        self._b_max = max(self._b_max, self._b_value)
        self._b_updates += 1
        self.transitions += 1

    def update(self, load: float) -> str:
        """Advance the ladder for the current x86 load; returns the
        (possibly new) state. Hysteresis: rungs engage at their enter
        threshold and release only at their lower exit threshold."""
        cfg = self.config
        self._last_load = float(load)
        if self.state == OverloadGuard.FULL:
            if load >= cfg.shed_enter_load:
                self._transition(OverloadGuard.SHED)
            elif load >= cfg.x86_only_enter_load:
                self._transition(OverloadGuard.X86_ONLY)
        elif self.state == OverloadGuard.X86_ONLY:
            if load >= cfg.shed_enter_load:
                self._transition(OverloadGuard.SHED)
            elif load <= cfg.x86_only_exit_load:
                self._transition(OverloadGuard.FULL)
        else:  # SHED
            if load <= cfg.shed_exit_load:
                if load <= cfg.x86_only_exit_load:
                    self._transition(OverloadGuard.FULL)
                else:
                    self._transition(OverloadGuard.X86_ONLY)
        return self.state

    @property
    def x86_only(self) -> bool:
        """While at (or above) the x86-only rung, Algorithm 2 is
        short-circuited to the x86 target: accelerator occupancy is
        what the brownout is protecting."""
        return self.state != OverloadGuard.FULL

    @property
    def shedding(self) -> bool:
        return self.state == OverloadGuard.SHED

    @property
    def brownout_level(self) -> int:
        """The rung as an integer (what :class:`LoadDigest` carries)."""
        return int(OverloadGuard._VALUE[self.state])

    # -- admission -----------------------------------------------------------
    def admit(
        self,
        now: float,
        deadline_at: Optional[float] = None,
        estimate_s: float = 0.0,
    ) -> Optional[str]:
        """Admission decision for one request: ``None`` to admit, else
        the shed reason. Pure — counting and queue accounting are the
        caller's (:meth:`count_shed` / :meth:`enqueued` /
        :meth:`dequeued`)."""
        if self.state == OverloadGuard.SHED:
            return "brownout"
        if self.depth >= self.config.admission_queue_limit:
            return "queue_full"
        estimate = (
            estimate_s + self._last_load * self.config.deadline_load_cost_s
        )
        if (
            deadline_at is not None
            and now + estimate + self.config.deadline_margin_s >= deadline_at
        ):
            return "deadline"
        return None

    def count_shed(self, reason: str) -> None:
        if self._m_shed is None:
            return
        child = self._shed_children.get(reason)
        if child is None:
            child = self._shed_children[reason] = self._m_shed.labels(
                reason=reason
            )
        child.inc()

    def _note_depth_change(self) -> None:
        now = self.clock()
        depth = float(self.depth)
        self._q_integral += depth * (now - self._q_last_t)
        self._q_last_t = now
        self._q_updates += 1

    def enqueued(self) -> None:
        self._note_depth_change()
        self.depth += 1
        self._q_max = max(self._q_max, float(self.depth))

    def dequeued(self) -> None:
        self._note_depth_change()
        self.depth = max(0, self.depth - 1)

    def snapshot(self) -> dict[str, float]:
        """The backpressure view a :class:`LoadDigest` carries."""
        return {
            "queue_depth": float(self.depth),
            "brownout": float(self.brownout_level),
        }


class ResiliencePolicy:
    """The runtime's shared resilience brain.

    One instance per :class:`~repro.core.runtime.XarTrekRuntime`; the
    application run loop, the scheduler server, and the chaos harness
    all consult it. Counter families are registered eagerly (they
    appear in every export at zero, making regressions diffable);
    breaker gauge series appear only for targets that ever failed.
    """

    KERNEL_PREFIX = "kernel:"
    DEVICE_KEY = "device:fpga"

    def __init__(
        self,
        clock: Callable[[], float],
        metrics: MetricsRegistry,
        config: Optional[ResilienceConfig] = None,
    ):
        self.config = config or ResilienceConfig()
        self.metrics = metrics
        self._m_retries = metrics.counter(
            "retries_total",
            "FPGA kernel-run retries after mid-flight faults",
            labelnames=("kernel",),
        )
        self._m_fallbacks = metrics.counter(
            "fallbacks_total",
            "invocations served by x86 instead of the decided target",
            labelnames=("reason",),
        )
        self._m_quarantines = metrics.counter(
            "quarantines_total",
            "circuit-breaker trips into the open state",
            labelnames=("target",),
        )
        self._device_recovery_listeners: list[Callable[[], None]] = []
        # Label-child and key memos: labels() re-validates labelnames and
        # re-hashes the key tuple on every call, which shows up in the
        # per-client hot loop; the children are stable for a run.
        self._retry_children: dict[str, object] = {}
        self._fallback_children: dict[str, object] = {}
        self._kernel_keys: dict[str, str] = {}
        self.breaker = CircuitBreaker(
            clock,
            threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            metrics=metrics,
            on_open=self._count_quarantine,
            on_close=self._on_breaker_close,
        )
        # Overload protection is opt-in: without a config the attribute
        # stays None and the scheduler admits everything, exactly as
        # before this layer existed.
        self.overload: Optional[OverloadGuard] = (
            OverloadGuard(clock, self.config.overload, metrics)
            if self.config.overload is not None
            else None
        )

    def _count_quarantine(self, key: str) -> None:
        self._m_quarantines.labels(target=key).inc()

    def _on_breaker_close(self, key: str) -> None:
        if key == self.DEVICE_KEY:
            for listener in self._device_recovery_listeners:
                listener()

    def add_device_recovery_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` whenever the device breaker closes again
        (half-open trial success). The scheduler server registers its
        reconfiguration-retry reset here, so a kernel that exhausted
        its background retry budget while the card was sick gets a
        fresh budget once the card is healthy."""
        self._device_recovery_listeners.append(listener)

    # -- counters -----------------------------------------------------------
    def count_retry(self, kernel: str) -> None:
        child = self._retry_children.get(kernel)
        if child is None:
            child = self._retry_children[kernel] = self._m_retries.labels(
                kernel=kernel
            )
        child.inc()

    def count_fallback(self, reason: str) -> None:
        child = self._fallback_children.get(reason)
        if child is None:
            child = self._fallback_children[reason] = self._m_fallbacks.labels(
                reason=reason
            )
        child.inc()

    # -- kernel-level breaker ------------------------------------------------
    def kernel_key(self, kernel: str) -> str:
        key = self._kernel_keys.get(kernel)
        if key is None:
            key = self._kernel_keys[kernel] = f"{self.KERNEL_PREFIX}{kernel}"
        return key

    def allow_kernel(self, kernel: str) -> bool:
        return self.breaker.allow(self.kernel_key(kernel))

    def record_kernel_failure(self, kernel: str) -> bool:
        return self.breaker.record_failure(self.kernel_key(kernel))

    def record_kernel_success(self, kernel: str) -> None:
        self.breaker.record_success(self.kernel_key(kernel))

    # -- device-level breaker ------------------------------------------------
    def allow_device(self) -> bool:
        return self.breaker.allow(self.DEVICE_KEY)

    def record_device_failure(self) -> bool:
        return self.breaker.record_failure(self.DEVICE_KEY)

    def record_device_success(self) -> None:
        self.breaker.record_success(self.DEVICE_KEY)

    # -- summary ------------------------------------------------------------
    def summary(self) -> dict:
        """Availability/goodput view over the policy's own counters plus
        the runtime's invocation counters (shared via the registry).

        ``goodput`` is the fraction of invocations served by the target
        the system *chose* for them — fallbacks complete correctly but
        slower, so goodput < 1.0 with availability 1.0 is exactly the
        graceful-degradation contract.
        """
        fallbacks = {
            key[0]: int(count) for key, count in self._m_fallbacks.as_dict().items()
        }
        retries = int(self._m_retries.value)
        quarantines = int(self._m_quarantines.value)
        invocations = 0
        family = self.metrics.get("invocations_total")
        if family is not None:
            invocations = int(family.value)
        total_fallbacks = sum(fallbacks.values())
        faults = 0
        fault_family = self.metrics.get("faults_injected_total")
        if fault_family is not None:
            faults = int(fault_family.value)
        return {
            "invocations": invocations,
            "faults_injected": faults,
            "retries": retries,
            "fallbacks": fallbacks,
            "fallbacks_total": total_fallbacks,
            "quarantines": quarantines,
            # Zero invocations (empty cohort, or everything shed before
            # reaching the runtime) is a real outcome under overload:
            # report 0.0 goodput rather than pretending perfection.
            "goodput": (
                (invocations - total_fallbacks) / invocations if invocations else 0.0
            ),
            "breaker_states": self.breaker.states(),
        }
