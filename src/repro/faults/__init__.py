"""Fault injection and resilience (see docs/resilience.md).

Layout:

* :mod:`repro.faults.plan` — declarative, seeded, JSON-serializable
  fault plans (:class:`FaultPlan` / :class:`FaultSpec`);
* :mod:`repro.faults.injector` — arms a plan against a live
  deployment (:class:`FaultInjector`);
* :mod:`repro.faults.resilience` — retry budgets, circuit breakers,
  and fallback policy (:class:`ResiliencePolicy`);
* :mod:`repro.faults.harness` — the chaos harness
  (:func:`run_chaos`) behind ``repro chaos`` and the
  ``chaos_stress`` bench scenario;
* :mod:`repro.faults.fleet` — per-node fault plans for multi-node
  fleets (:class:`FleetFaultPlan`), one injector per targeted node.
"""

from repro.faults.cohort import resolve_cohort_faults
from repro.faults.fleet import FleetFaultPlan, fleet_fault_seeds
from repro.faults.harness import (
    BrownoutCriteria,
    ChaosReport,
    default_plan,
    run_chaos,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultPlanError, FaultSpec
from repro.faults.resilience import (
    FALLBACK_REASONS,
    SHED_REASONS,
    BreakerState,
    CircuitBreaker,
    OverloadConfig,
    OverloadGuard,
    ResilienceConfig,
    ResiliencePolicy,
)

__all__ = [
    "FAULT_KINDS",
    "FALLBACK_REASONS",
    "SHED_REASONS",
    "BreakerState",
    "BrownoutCriteria",
    "ChaosReport",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FleetFaultPlan",
    "fleet_fault_seeds",
    "OverloadConfig",
    "OverloadGuard",
    "ResilienceConfig",
    "ResiliencePolicy",
    "default_plan",
    "resolve_cohort_faults",
    "run_chaos",
]
