"""Xar-Trek reproduction: run-time execution migration among FPGAs and
heterogeneous-ISA CPUs (Horta et al., Middleware '21), in simulation.

The public API in one import::

    from repro import build_system, SystemMode, PAPER_BENCHMARKS

    runtime = build_system(PAPER_BENCHMARKS)
    done = runtime.launch("digit.2000", mode=SystemMode.XAR_TREK)
    record = runtime.platform.sim.run_until_event(done)

Subpackages:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.hardware` — x86/ARM/FPGA platform models
* :mod:`repro.popcorn` — multi-ISA binaries, state transformation, DSM
* :mod:`repro.compiler` — the Xar-Trek compiler pipeline (steps A-G)
* :mod:`repro.xrt` — XRT/OpenCL-like host runtime for the FPGA
* :mod:`repro.workloads` — the paper's benchmarks, functional + profiled
* :mod:`repro.core` — scheduler (Algorithms 1-2), run-time, facade
* :mod:`repro.experiments` — every table and figure, regenerated
"""

from repro.core import SystemMode, XarTrekRuntime, build_system
from repro.types import Target
from repro.workloads import PAPER_BENCHMARKS

__version__ = "1.0.0"

__all__ = [
    "PAPER_BENCHMARKS",
    "SystemMode",
    "Target",
    "XarTrekRuntime",
    "build_system",
    "__version__",
]
