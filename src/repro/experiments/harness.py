"""Shared experiment machinery.

The paper's evaluation repeatedly runs *application sets*: a randomly
sampled multiset of the five benchmarks launched concurrently on a
fresh deployment, optionally above a background of MG-B load
generators, measured as the set's average execution time over several
repeats. :func:`run_application_set` is that primitive;
:func:`average_execution_time` wraps the repeat loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core import SystemMode, XarTrekRuntime, build_system
from repro.core.application import RunRecord
from repro.workloads import PAPER_BENCHMARKS

__all__ = [
    "SetOutcome",
    "sample_application_set",
    "run_application_set",
    "average_execution_time",
    "MODE_LABELS",
]

#: The paper's bar labels for each system mode.
MODE_LABELS: dict[SystemMode, str] = {
    SystemMode.VANILLA_X86: "Vanilla Linux/x86",
    SystemMode.VANILLA_ARM: "Vanilla Linux/ARM",
    SystemMode.ALWAYS_FPGA: "FPGA",
    SystemMode.XAR_TREK: "Xar-Trek",
}

#: Small launch stagger so the background load is established before
#: the measured applications issue scheduling requests.
_LAUNCH_DELAY_S = 0.05


@dataclass
class SetOutcome:
    """One application set's measured run."""

    mode: SystemMode
    apps: tuple[str, ...]
    records: list[RunRecord] = field(default_factory=list)
    #: The deployment's full metrics snapshot at measurement end
    #: (:meth:`repro.metrics.MetricsRegistry.snapshot`), so percentile
    #: tables and regression diffs don't need the live runtime.
    metrics: Optional[dict] = None

    @property
    def average_s(self) -> float:
        return float(np.mean([rec.elapsed_s for rec in self.records]))

    @property
    def max_s(self) -> float:
        return float(np.max([rec.elapsed_s for rec in self.records]))

    def target_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for rec in self.records:
            for target in rec.targets:
                counts[str(target)] = counts.get(str(target), 0) + 1
        return counts


def sample_application_set(
    rng: np.random.Generator,
    size: int,
    pool: Sequence[str] = PAPER_BENCHMARKS,
) -> tuple[str, ...]:
    """Uniformly sample ``size`` applications (with replacement), as in
    Section 4.1's randomized sets."""
    return tuple(str(name) for name in rng.choice(list(pool), size=size))


def run_application_set(
    apps: Sequence[str],
    mode: SystemMode,
    background: int = 0,
    seed: int = 0,
    runtime: Optional[XarTrekRuntime] = None,
    duty: float = 1.0,
) -> SetOutcome:
    """Launch ``apps`` concurrently on a fresh deployment and wait.

    ``background`` MG-B load generators (CPU-bound fraction ``duty``)
    run on the x86 host for the duration. Every run uses its own
    simulator, so repeats are independent and deterministic in
    ``seed``: per-launch seeds are spawned from one
    :class:`~numpy.random.SeedSequence` rooted at ``seed``, so they
    never collide across base seeds (the old ``seed * 1000 + i``
    arithmetic did).

    When a prebuilt ``runtime`` is passed, its platform (and therefore
    the platform RNG seed it was built with) is used as-is — only the
    per-launch seeds still derive from ``seed``. The runtime must have
    been compiled with every application in ``apps``; a partial
    deployment raises ``ValueError`` instead of failing mid-launch.
    """
    if runtime is None:
        runtime = build_system(sorted(set(apps)), seed=seed)
    else:
        missing = sorted(set(apps) - set(runtime.result.applications))
        if missing:
            raise ValueError(
                f"prebuilt runtime lacks applications {missing}; it was "
                f"compiled with {sorted(runtime.result.applications)}"
            )
    from repro.experiments.sweep import derive_seeds

    launch_seeds = derive_seeds(seed, len(apps))
    load = runtime.launch_background(background, duty=duty) if background else None
    events = [
        runtime.launch(app, seed=launch_seeds[i], mode=mode, delay_s=_LAUNCH_DELAY_S)
        for i, app in enumerate(apps)
    ]
    records = runtime.wait_all(events)
    if load is not None:
        load.stop()
    return SetOutcome(
        mode=mode,
        apps=tuple(apps),
        records=records,
        metrics=runtime.metrics.snapshot(),
    )


def average_execution_time(
    set_size: int,
    mode: SystemMode,
    background: int = 0,
    repeats: int = 10,
    seed: int = 0,
    pool: Sequence[str] = PAPER_BENCHMARKS,
    jobs: Optional[int] = None,
    cache=None,
) -> tuple[float, float]:
    """Mean and standard deviation over ``repeats`` random sets.

    Each repeat samples a fresh application set (same sets across
    modes for a given seed, since sampling is seed-deterministic and
    independent of the mode). The repeats are emitted as sweep cells
    and fanned out over ``jobs`` workers (see
    :mod:`repro.experiments.sweep`); results are byte-identical for
    any ``jobs``.
    """
    from repro.experiments.sweep import cells_for_sets, run_cells

    cells = cells_for_sets(
        set_size, mode, background=background, repeats=repeats, seed=seed, pool=pool
    )
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    averages = [result.outcome.average_s for result in sweep.results]
    return float(np.mean(averages)), float(np.std(averages))
