"""Wall-clock benchmark harness (the perf trajectory for this repo).

The paper's experiment suite is a discrete-event simulation, so the
numbers it produces are seed-deterministic — but how long the suite
takes to *produce* them is a property of the simulator's hot path, and
that is what this module measures. Each scenario is a seeded,
figure-shaped workload (low load, high load, throughput window); the
harness times it with ``time.perf_counter``, counts processed
simulation events, records peak RSS, and folds a checksum over the
simulation *outputs* so a perf PR can prove it did not change behaviour
while making the clock go faster.

Run it via ``python -m repro bench`` (or ``python
benchmarks/wallclock.py``); results are written as deterministic-order
JSON to ``BENCH_wallclock.json``. Passing ``--baseline`` compares
against a previously committed result file and reports speedups. See
``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import json
import platform as _platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core import SystemMode, build_system
from repro.experiments.harness import run_application_set, sample_application_set
from repro.experiments.throughput import measure_throughput

__all__ = [
    "SCENARIOS",
    "BenchReport",
    "ScenarioResult",
    "available_scenarios",
    "load_report",
    "run_bench",
    "run_scenario",
]

#: High-load process target of Figure 5 (more than the testbed's 102 cores).
_HIGH_LOAD_PROCESSES = 120


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return 0
    # Linux reports kilobytes, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def _checksum(parts: Sequence[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _record_lines(outcome) -> list[str]:
    return [
        f"{rec.app},{rec.start_s:.9f},{rec.end_s:.9f},{rec.calls_completed},"
        f"{rec.migrations},{','.join(str(t) for t in rec.targets)}"
        for rec in outcome.records
    ]


def _run_sets(
    configs: Sequence[tuple[int, int, SystemMode]], seed: int
) -> tuple[int, float, list[str]]:
    """Run one seeded application set per (size, background, mode) config.

    Returns total processed events, total simulated seconds, and the
    checksum lines describing every run record.
    """
    events = 0
    sim_seconds = 0.0
    lines: list[str] = []
    rng = np.random.default_rng(seed)
    for index, (size, background, mode) in enumerate(configs):
        apps = sample_application_set(rng, size)
        runtime = build_system(sorted(set(apps)), seed=seed + index)
        outcome = run_application_set(
            apps, mode, background=background, seed=seed + index, runtime=runtime
        )
        sim = runtime.platform.sim
        events += sim.events_processed
        sim_seconds += sim.now
        lines.append(f"{mode.value}:{size}:{background}")
        lines.extend(_record_lines(outcome))
    return events, sim_seconds, lines


def _scenario_fig3_low_load(seed: int, quick: bool):
    """Figure-3 shape: small sets, no background, all four systems."""
    sizes = (2,) if quick else (2, 4)
    modes = (SystemMode.VANILLA_X86, SystemMode.XAR_TREK)
    if not quick:
        modes += (SystemMode.ALWAYS_FPGA, SystemMode.VANILLA_ARM)
    configs = [(size, 0, mode) for size in sizes for mode in modes]
    return _run_sets(configs, seed)


def _scenario_fig5_high_load(seed: int, quick: bool):
    """Figure-5 shape: 120 resident processes, sets of 5-25 apps.

    This is the acceptance scenario for simulator-core perf work: the
    processor-sharing recompute and the background-generator slicing
    dominate here, exactly like the paper's Figures 4-5 experiments.
    """
    if quick:
        sizes, modes, repeats = (10,), (SystemMode.XAR_TREK,), 1
    else:
        sizes = (5, 15, 25)
        modes = (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)
        repeats = 2
    configs = [
        (size, _HIGH_LOAD_PROCESSES - size, mode)
        for _repeat in range(repeats)
        for size in sizes
        for mode in modes
    ]
    return _run_sets(configs, seed)


def _scenario_fig6_throughput(seed: int, quick: bool):
    """Figure-6 shape: 60 s face-detection window over MG-B background."""
    backgrounds = (50,) if quick else (0, 50, 100)
    modes = (SystemMode.XAR_TREK,)
    if not quick:
        modes += (SystemMode.VANILLA_X86,)
    events = 0
    sim_seconds = 0.0
    lines: list[str] = []
    for background in backgrounds:
        for mode in modes:
            throughput = measure_throughput(mode, background, seed=seed)
            lines.append(f"{mode.value}:{background}:{throughput:.9f}")
    # measure_throughput owns its runtime, so re-run one config through
    # build_system to expose the simulator counters.
    runtime = build_system(["facedet.320"], seed=seed)
    load = runtime.launch_background(backgrounds[-1])
    done = runtime.launch(
        "facedet.320", seed=seed, mode=SystemMode.XAR_TREK, calls=1000, deadline_s=60.0
    )
    runtime.platform.sim.run_until_event(done)
    load.stop()
    events += runtime.platform.sim.events_processed
    sim_seconds += runtime.platform.sim.now
    return events, sim_seconds, lines


#: name -> callable(seed, quick) -> (events, sim_seconds, checksum_lines)
SCENARIOS: dict[str, Callable[[int, bool], tuple[int, float, list[str]]]] = {
    "fig3_low_load": _scenario_fig3_low_load,
    "fig5_high_load": _scenario_fig5_high_load,
    "fig6_throughput": _scenario_fig6_throughput,
}


def available_scenarios() -> tuple[str, ...]:
    return tuple(SCENARIOS)


@dataclass
class ScenarioResult:
    """One timed scenario run."""

    name: str
    wall_s: float
    events: int
    sim_seconds: float
    peak_rss_bytes: int
    checksum: str

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_seconds": round(self.sim_seconds, 6),
            "peak_rss_bytes": self.peak_rss_bytes,
            "checksum": self.checksum,
        }


@dataclass
class BenchReport:
    """All scenario results plus environment context."""

    seed: int
    quick: bool
    results: list[ScenarioResult] = field(default_factory=list)
    #: Optional reference wall times (name -> seconds) for speedups.
    baseline_wall_s: dict[str, float] = field(default_factory=dict)

    def speedups(self) -> dict[str, float]:
        """Baseline wall time / this run's wall time, per scenario."""
        out = {}
        for result in self.results:
            base = self.baseline_wall_s.get(result.name)
            if base and result.wall_s > 0:
                out[result.name] = base / result.wall_s
        return out

    def to_dict(self) -> dict:
        payload = {
            "schema": "xar-trek-bench/1",
            "python": _platform.python_version(),
            "seed": self.seed,
            "quick": self.quick,
            "scenarios": [result.to_dict() for result in self.results],
        }
        if self.baseline_wall_s:
            payload["baseline_wall_s"] = {
                name: round(value, 6)
                for name, value in sorted(self.baseline_wall_s.items())
            }
            payload["speedup_vs_baseline"] = {
                name: round(value, 2) for name, value in sorted(self.speedups().items())
            }
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def to_text(self) -> str:
        lines = [
            f"{'scenario':<18} {'wall (s)':>9} {'events':>9} {'events/s':>10} "
            f"{'sim (s)':>9} {'peak RSS':>9}"
        ]
        for result in self.results:
            lines.append(
                f"{result.name:<18} {result.wall_s:>9.3f} {result.events:>9d} "
                f"{result.events_per_sec:>10.0f} {result.sim_seconds:>9.1f} "
                f"{result.peak_rss_bytes / 2**20:>7.1f}MB"
            )
        for name, speedup in sorted(self.speedups().items()):
            lines.append(f"{name}: {speedup:.2f}x vs baseline")
        return "\n".join(lines)


def run_scenario(name: str, seed: int = 0, quick: bool = False) -> ScenarioResult:
    """Time one named scenario; see :data:`SCENARIOS`."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench scenario {name!r}; pick from {sorted(SCENARIOS)}"
        ) from None
    started = time.perf_counter()
    events, sim_seconds, lines = fn(seed, quick)
    wall_s = time.perf_counter() - started
    return ScenarioResult(
        name=name,
        wall_s=wall_s,
        events=events,
        sim_seconds=sim_seconds,
        peak_rss_bytes=_peak_rss_bytes(),
        checksum=_checksum(lines),
    )


def load_report(path: str) -> dict[str, float]:
    """Read a committed bench JSON; returns scenario name -> wall seconds."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        entry["name"]: float(entry["wall_s"]) for entry in payload.get("scenarios", [])
    }


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    quick: bool = False,
    baseline: Optional[str] = None,
) -> BenchReport:
    """Run the named scenarios (default: all) and collect a report."""
    report = BenchReport(seed=seed, quick=quick)
    if baseline:
        report.baseline_wall_s = load_report(baseline)
    for name in scenarios or available_scenarios():
        report.results.append(run_scenario(name, seed=seed, quick=quick))
    return report
