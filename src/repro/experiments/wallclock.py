"""Wall-clock benchmark harness (the perf trajectory for this repo).

The paper's experiment suite is a discrete-event simulation, so the
numbers it produces are seed-deterministic — but how long the suite
takes to *produce* them is a property of the simulator's hot path, and
that is what this module measures. Each scenario is a seeded,
figure-shaped workload (low load, high load, throughput window); the
harness times it with ``time.perf_counter``, counts processed
simulation events, records peak RSS, and folds a checksum over the
simulation *outputs* so a perf PR can prove it did not change behaviour
while making the clock go faster.

Run it via ``python -m repro bench`` (or ``python
benchmarks/wallclock.py``); results are written as deterministic-order
JSON to ``BENCH_wallclock.json``. Passing ``--baseline`` compares
against a previously committed result file and reports speedups. See
``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core import SystemMode, build_system
from repro.experiments.harness import run_application_set, sample_application_set
from repro.experiments.sweep import (
    SweepCache,
    cells_for_sets,
    resolve_jobs,
    results_checksum,
    run_cells,
    warm_pool,
)
from repro.experiments.throughput import measure_throughput

__all__ = [
    "SCENARIOS",
    "BenchContext",
    "BenchReport",
    "ScenarioResult",
    "available_scenarios",
    "guard_events_per_sec",
    "load_report",
    "load_report_entries",
    "run_bench",
    "run_scenario",
]

#: High-load process target of Figure 5 (more than the testbed's 102 cores).
_HIGH_LOAD_PROCESSES = 120

#: The report's JSON schema tag; ``load_report`` refuses anything else.
_SCHEMA = "xar-trek-bench/1"


@dataclass(frozen=True)
class BenchContext:
    """Execution knobs a scenario may use (ignored by most).

    ``jobs`` is the worker count for the parallel leg of
    ``report_sweep``; ``cache_dir`` overrides its cache location
    (default: a throwaway temp directory, so the cold/warm split is
    controlled).
    """

    jobs: int = 1
    cache_dir: Optional[str] = None


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return 0
    # Linux reports kilobytes, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def _checksum(parts: Sequence[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _lines_for_records(records) -> list[str]:
    return [
        f"{rec.app},{rec.start_s:.9f},{rec.end_s:.9f},{rec.calls_completed},"
        f"{rec.migrations},{','.join(str(t) for t in rec.targets)}"
        for rec in records
    ]


def _record_lines(outcome) -> list[str]:
    return _lines_for_records(outcome.records)


def _run_sets(
    configs: Sequence[tuple[int, int, SystemMode]], seed: int
) -> tuple[int, float, list[str]]:
    """Run one seeded application set per (size, background, mode) config.

    Returns total processed events, total simulated seconds, and the
    checksum lines describing every run record.
    """
    events = 0
    sim_seconds = 0.0
    lines: list[str] = []
    rng = np.random.default_rng(seed)
    for index, (size, background, mode) in enumerate(configs):
        apps = sample_application_set(rng, size)
        runtime = build_system(sorted(set(apps)), seed=seed + index)
        outcome = run_application_set(
            apps, mode, background=background, seed=seed + index, runtime=runtime
        )
        sim = runtime.platform.sim
        events += sim.events_processed
        sim_seconds += sim.now
        lines.append(f"{mode.value}:{size}:{background}")
        lines.extend(_record_lines(outcome))
    return events, sim_seconds, lines


def _scenario_fig3_low_load(seed: int, quick: bool, ctx: BenchContext):
    """Figure-3 shape: small sets, no background, all four systems."""
    sizes = (2,) if quick else (2, 4)
    modes = (SystemMode.VANILLA_X86, SystemMode.XAR_TREK)
    if not quick:
        modes += (SystemMode.ALWAYS_FPGA, SystemMode.VANILLA_ARM)
    configs = [(size, 0, mode) for size in sizes for mode in modes]
    return _run_sets(configs, seed)


def _scenario_fig5_high_load(seed: int, quick: bool, ctx: BenchContext):
    """Figure-5 shape: 120 resident processes, sets of 5-25 apps.

    This is the acceptance scenario for simulator-core perf work: the
    processor-sharing recompute and the background-generator slicing
    dominate here, exactly like the paper's Figures 4-5 experiments.
    """
    if quick:
        sizes, modes, repeats = (10,), (SystemMode.XAR_TREK,), 1
    else:
        sizes = (5, 15, 25)
        modes = (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)
        repeats = 2
    configs = [
        (size, _HIGH_LOAD_PROCESSES - size, mode)
        for _repeat in range(repeats)
        for size in sizes
        for mode in modes
    ]
    return _run_sets(configs, seed)


def _scenario_fig6_throughput(seed: int, quick: bool, ctx: BenchContext):
    """Figure-6 shape: 60 s face-detection window over MG-B background."""
    backgrounds = (50,) if quick else (0, 50, 100)
    modes = (SystemMode.XAR_TREK,)
    if not quick:
        modes += (SystemMode.VANILLA_X86,)
    events = 0
    sim_seconds = 0.0
    lines: list[str] = []
    for background in backgrounds:
        for mode in modes:
            throughput = measure_throughput(mode, background, seed=seed)
            lines.append(f"{mode.value}:{background}:{throughput:.9f}")
    # measure_throughput owns its runtime, so re-run one config through
    # build_system to expose the simulator counters.
    runtime = build_system(["facedet.320"], seed=seed)
    load = runtime.launch_background(backgrounds[-1])
    done = runtime.launch(
        "facedet.320", seed=seed, mode=SystemMode.XAR_TREK, calls=1000, deadline_s=60.0
    )
    runtime.platform.sim.run_until_event(done)
    load.stop()
    events += runtime.platform.sim.events_processed
    sim_seconds += runtime.platform.sim.now
    return events, sim_seconds, lines


def _scenario_report_sweep(seed: int, quick: bool, ctx: BenchContext):
    """Report-shaped sweep: one Figure-5-style cell grid executed three
    ways — serial, parallel (``--jobs``), and parallel over a warm
    cache — recording the wall clock of each leg.

    The serial and parallel legs must produce identical checksums (the
    executor's determinism contract); the warm leg must hit the cache
    for every cell. Wall times and speedups land in the scenario's
    ``extra`` payload, and in ``BENCH_wallclock.json``.
    """
    if quick:
        sizes, modes, repeats = (5,), (SystemMode.XAR_TREK,), 2
    else:
        sizes = (5, 15, 25)
        modes = (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)
        repeats = 3
    cells = [
        cell
        for size in sizes
        for cell in cells_for_sets(
            size, modes, background=_HIGH_LOAD_PROCESSES - size,
            repeats=repeats, seed=seed,
        )
    ]
    # The parallel leg exists to measure pool dispatch, so it must not
    # inherit the library's conservative serial default (jobs=1). With
    # no explicit --jobs and no REPRO_SWEEP_JOBS, fan out across every
    # CPU — and keep a two-worker floor so the pool path is exercised
    # (and its dispatch overhead measured honestly) even on a one-core
    # host, where parallel_speedup <= 1.0 is the expected outcome.
    if ctx.jobs is None and os.environ.get("REPRO_SWEEP_JOBS") is None:
        jobs = max(2, resolve_jobs("auto"))
    else:
        jobs = max(2, resolve_jobs(ctx.jobs))

    started = time.perf_counter()
    serial = run_cells(cells, jobs=1)
    serial_wall = time.perf_counter() - started

    # Spawn the persistent pool and prebuild each worker's runtime
    # before the timed leg: the parallel leg should measure simulation
    # fan-out, not process startup and cold compile caches.
    pool_workers = warm_pool(jobs)

    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(ctx.cache_dir or tmp)
        # min_cells=2: the startup cost parallel_threshold guards
        # against was just paid by warm_pool, so the 27-cell grid must
        # actually use the pool instead of silently falling back.
        started = time.perf_counter()
        parallel = run_cells(cells, jobs=jobs, cache=cache, min_cells=2)
        parallel_wall = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_cells(cells, jobs=jobs, cache=cache, min_cells=2)
        warm_wall = time.perf_counter() - started

    serial_sum = results_checksum(serial.results)
    if results_checksum(parallel.results) != serial_sum:
        raise AssertionError(
            "parallel sweep diverged from serial execution — the "
            "determinism contract of repro.experiments.sweep is broken"
        )
    if results_checksum(warm.results) != serial_sum:
        raise AssertionError("cached sweep results diverged from execution")

    events = sum(r.events for r in serial.results)
    sim_seconds = sum(r.sim_seconds for r in serial.results)
    lines = [f"report_sweep:{len(cells)}:{serial_sum}"]
    for result in serial.results:
        lines.extend(_record_lines(result.outcome))
    extra = {
        "jobs": jobs,
        "cells": len(cells),
        "parallel_mode": parallel.stats.mode,
        "serial_wall_s": round(serial_wall, 6),
        "parallel_wall_s": round(parallel_wall, 6),
        "warm_cache_wall_s": round(warm_wall, 6),
        "parallel_speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0 else 0.0,
        "warm_cache_speedup": round(serial_wall / warm_wall, 2)
        if warm_wall > 0 else 0.0,
        "cache_hits_warm": warm.stats.cache_hits,
        "worker_utilization": round(parallel.stats.worker_utilization, 3),
        "pool_workers": pool_workers,
    }
    return events, sim_seconds, lines, extra


def _scenario_scale_stress(seed: int, quick: bool, ctx: BenchContext):
    """Fleet-scale shape: 1000+ clients on one deployment.

    Every committed figure scenario tops out at a handful of clients;
    this one drives a single Xar-Trek deployment with a thousand
    staggered client runs over the full mixed benchmark set, resident
    background load, and DSM-heavy migration churn (each XAR_TREK run
    round-trips its working set over the shared Ethernet). It is the
    acceptance scenario for the batched-DSM, closure-VM, and O(1)
    load-accounting hot paths — the headline number is events/sec at
    scale, guarded in CI against regressions.
    """
    n_clients = 250 if quick else 1000
    background = 25 if quick else 50
    runtime, records = _scale_workload(seed, n_clients, background)
    sim = runtime.platform.sim
    lines = [f"scale_stress:{n_clients}:{background}"]
    lines.extend(_lines_for_records(records))
    snapshot = runtime.load_snapshot()
    dsm_stats = runtime.dsm.stats if runtime.dsm is not None else None
    extra = {
        "clients": n_clients,
        "background": background,
        "migrations": sum(rec.migrations for rec in records),
        "dsm_page_transfers": dsm_stats.page_transfers if dsm_stats else 0,
        "x86_mean_load": round(snapshot["x86"]["time_weighted_mean"], 2),
        "x86_max_load": snapshot["x86"]["max"],
    }
    if not quick:
        # Deferred (runs after the timed window — see run_scenario):
        # the queue-implementation head-to-head backing DEFAULT_QUEUE.
        extra["queue_eval"] = lambda: _queue_eval(seed)
    return sim.events_processed, sim.now, lines, extra


def _scale_workload(seed: int, n_clients: int, background: int):
    """The scale_stress workload body: N staggered XAR_TREK clients over
    the full benchmark pool on one deployment. Returns (runtime,
    records); shared by the timed scenario and the queue head-to-head.
    """
    from repro.workloads import PAPER_BENCHMARKS

    pool = tuple(PAPER_BENCHMARKS)
    rng = np.random.default_rng(seed)
    runtime = build_system(sorted(set(pool)), seed=seed)
    load = runtime.launch_background(background)
    handles = []
    for index in range(n_clients):
        app = pool[int(rng.integers(len(pool)))]
        delay = float(rng.uniform(0.0, 30.0))
        handles.append(
            runtime.launch(
                app,
                seed=seed + index,
                mode=SystemMode.XAR_TREK,
                calls=3,
                delay_s=delay,
            )
        )
    records = runtime.wait_all(handles)
    load.stop()
    return runtime, records


def _queue_eval(seed: int, n_clients: int = 250, background: int = 25) -> dict:
    """Head-to-head: the quick scale_stress shape under each pending-
    event queue implementation.

    This is the standing evaluation behind
    :data:`repro.sim.engine.DEFAULT_QUEUE`: every full bench re-runs
    it and records both walls, the winner, and whether the two queues
    produced byte-identical run records (they must — popping in
    identical ``(at, seq)`` order is a tested contract). If the
    calendar queue starts winning here, flip DEFAULT_QUEUE.
    """
    from repro.sim.engine import DEFAULT_QUEUE, QUEUE_ENV

    walls: dict[str, float] = {}
    lines: dict[str, list[str]] = {}
    for queue in ("heap", "calendar"):
        previous = os.environ.get(QUEUE_ENV)
        os.environ[QUEUE_ENV] = queue
        try:
            started = time.perf_counter()
            _runtime, records = _scale_workload(seed, n_clients, background)
            walls[queue] = round(time.perf_counter() - started, 6)
            lines[queue] = _lines_for_records(records)
        finally:
            if previous is None:
                os.environ.pop(QUEUE_ENV, None)
            else:
                os.environ[QUEUE_ENV] = previous
    return {
        "clients": n_clients,
        "heap_wall_s": walls["heap"],
        "calendar_wall_s": walls["calendar"],
        "winner": min(walls, key=walls.get),
        "default": DEFAULT_QUEUE,
        "identical_outcomes": lines["heap"] == lines["calendar"],
    }


def _scenario_cohort_stress(seed: int, quick: bool, ctx: BenchContext):
    """Cohort-vectorized fleet shape: 10k clients in O(cohorts) events.

    The same deployment as ``scale_stress``, but the clients go through
    :mod:`repro.core.cohort`: one numpy-backed cohort per (application,
    arrival law) batch, advanced as a single simulator event per call
    round. The headline rate divides *logical* client events (arrival,
    host completion, each call, termination) by wall time — the whole
    point of the vectorization is that this rate is decoupled from the
    simulator's event count (``sim_events`` in the extra payload, a few
    dozen). The per-client reference path (``REPRO_COHORT_REFERENCE=1``)
    produces bit-identical checksums; the differential oracle suite in
    ``tests/core/test_cohort_oracle.py`` enforces that continuously.

    ``quick`` does not shrink this scenario: the vectorized run is
    O(cohorts), already faster than every other scenario's quick leg,
    and a smaller population would not be cheaper — it would only let
    fixed setup costs (runtime build, arrival sampling) dominate the
    tiny wall time, making the measured rate incomparable with the
    committed full-size figure the CI guard checks against.
    """
    from repro.core.cohort import ArrivalLaw, CohortSpec
    from repro.workloads import PAPER_BENCHMARKS

    n_clients = 10_000
    background = 50
    calls = 5
    apps = tuple(sorted(set(PAPER_BENCHMARKS)))
    laws = ("uniform", "poisson", "staggered")
    rng = np.random.default_rng(seed)
    per_app = n_clients // len(apps)
    specs = []
    for index, app in enumerate(apps):
        clients = per_app + (n_clients - per_app * len(apps) if index == 0 else 0)
        specs.append(
            CohortSpec(
                app,
                clients,
                calls=calls,
                arrival=ArrivalLaw(
                    laws[index % len(laws)],
                    start=float(rng.uniform(0.0, 5.0)),
                    span=30.0,
                ),
                seed=int(rng.integers(2**32)),
            )
        )
    runtime = build_system(apps, seed=seed)
    result = runtime.run_cohorts(specs, background=background)
    lines = [f"cohort_stress:{n_clients}:{background}"]
    lines.extend(result.lines())
    served = result.served_by_target()
    extra = {
        "clients": result.clients,
        "cohorts": len(result.cohorts),
        "background": background,
        "path": result.path,
        "sim_events": result.sim_events,
        "fault_fallbacks": result.fault_fallbacks,
    }
    for target, count in sorted(served.items()):
        extra[f"calls_{target}"] = count
    return result.logical_events, result.sim_seconds, lines, extra


def _scenario_fleet_stress(seed: int, quick: bool, ctx: BenchContext):
    """Warehouse shape: a 10-node fleet serving 10k+ clients.

    Two legs against one :class:`~repro.fleet.FleetDeployment` (ten
    complete x86+ARM+FPGA nodes on one simulated clock, gossiping load
    digests every simulated second):

    * a *per-client* leg on the shared clock — sticky keys with repeat
      runs, so power-of-two rebalancing on stale gossip deltas and
      cross-node working-set migration over the inter-node fabric
      actually fire (the DSM page counters in ``extra`` prove it);
    * a *cohort* leg — 10k clients sharded across the nodes at
      assignment time on the quantized stale-load view, then advanced
      through the vectorized cohort model per node.

    ``quick`` shrinks only the per-client leg; the cohort leg is
    O(cohorts) and stays full-size so the guarded events/sec figure is
    comparable with the committed full run. Checksums cover every
    record line, every per-node cohort line, and the assignment
    vector, so the scenario doubles as the fleet's replay-determinism
    tripwire.

    The cohort leg runs twice — serially, then fanned out over the
    persistent worker pool — and asserts the two results byte-identical
    before reporting both walls and the speedup in ``extra`` (the
    checksum is fed from the serial leg, so it is invariant to the
    parallel path existing at all). On a one-core host the pool is
    still exercised (two-worker floor, like report_sweep) and
    ``parallel_speedup <= 1.0`` is the honest expected outcome.
    """
    from repro.core.cohort import ArrivalLaw, CohortSpec
    from repro.fleet import FleetConfig, FleetDeployment
    from repro.workloads import PAPER_BENCHMARKS

    n_nodes = 10
    n_cohort_clients = 10_000
    per_client = 40 if quick else 120
    apps = tuple(sorted(set(PAPER_BENCHMARKS)))
    fleet = FleetDeployment(FleetConfig(nodes=n_nodes, apps=apps, seed=seed))
    rng = np.random.default_rng(seed)

    keys = max(1, per_client // 3)
    handles = []
    for index in range(per_client):
        app = apps[int(rng.integers(len(apps)))]
        handles.append(
            fleet.launch(
                app,
                client=f"client{index % keys}",
                seed=seed + index,
                mode=SystemMode.XAR_TREK,
                calls=2,
                delay_s=float(rng.uniform(0.0, 20.0)),
            )
        )
    records = fleet.wait_all(handles)

    laws = ("uniform", "poisson", "staggered")
    per_app = n_cohort_clients // len(apps)
    specs = []
    for index, app in enumerate(apps):
        clients = per_app + (
            n_cohort_clients - per_app * len(apps) if index == 0 else 0
        )
        specs.append(
            CohortSpec(
                app,
                clients,
                calls=4,
                arrival=ArrivalLaw(
                    laws[index % len(laws)],
                    start=float(rng.uniform(0.0, 5.0)),
                    span=30.0,
                ),
                seed=int(rng.integers(2**32)),
            )
        )
    started = time.perf_counter()
    cohorts = fleet.run_cohorts(specs, background=20, jobs=1)
    serial_wall = time.perf_counter() - started

    # Two-worker floor for the same reason as report_sweep: the pool
    # path must be exercised (and its dispatch overhead measured
    # honestly) even on a one-core host.
    jobs = max(2, ctx.jobs)
    pool_workers = warm_pool(jobs)
    started = time.perf_counter()
    parallel = fleet.run_cohorts(specs, background=20, jobs=jobs, min_nodes=2)
    parallel_wall = time.perf_counter() - started
    if parallel.lines() != cohorts.lines():
        raise AssertionError(
            "parallel fleet cohort run diverged from serial execution — "
            "the deterministic-merge contract of repro.fleet.parallel "
            "is broken"
        )
    fleet.stop()

    lines = [f"fleet_stress:{n_nodes}:{per_client}:{n_cohort_clients}"]
    lines.extend(_lines_for_records(records))
    lines.extend(cohorts.lines())
    events = (
        fleet.sim.events_processed
        + cohorts.logical_events
        + parallel.logical_events
    )
    sim_seconds = fleet.sim.now + cohorts.sim_seconds + parallel.sim_seconds
    extra = {
        "nodes": n_nodes,
        "per_client_runs": len(records),
        "cohort_clients": cohorts.clients,
        "cohort_assignment_skew": cohorts.assignment_skew(),
        "gossip_rounds": fleet.gossip.rounds,
        "cross_node_migrations": fleet.router.cross_node_migrations,
        "fabric_page_transfers": fleet.dsm.stats.page_transfers,
        "load_skew": round(fleet.load_skew(), 2),
        "jobs": jobs,
        "pool_workers": pool_workers,
        "parallel_mode": parallel.mode,
        "worker_rebuilds": parallel.worker_rebuilds,
        "cohort_serial_wall_s": round(serial_wall, 6),
        "cohort_parallel_wall_s": round(parallel_wall, 6),
        "parallel_speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0 else 0.0,
    }
    return events, sim_seconds, lines, extra


def _scenario_chaos_stress(seed: int, quick: bool, ctx: BenchContext):
    """Robustness shape: the scale_stress fleet under a seeded fault plan.

    Every fault kind fires at least once (kernel-run faults, reconfig
    failures, a device crash window, link degradation, a scheduler
    outage, a slow-reply window) while hundreds of staggered clients
    run. The harness runs the identical workload fault-free first and
    diffs outcomes client by client; the acceptance bar is 100%
    completion with zero result mismatches — fallbacks to x86 are the
    *mechanism*, not a failure.

    The bench wall clock covers *both* legs (the fault-free
    differential baseline and the chaos leg), so the event count sums
    both simulators too. Earlier revisions counted only the chaos
    leg's events against the two-leg wall, which made chaos_stress
    look ~2x slower than scale_stress before any fault fired; the
    per-leg split stays visible in ``extra``.

    The harness then runs again with its two legs in two pool workers
    (``run_chaos(jobs=2)``); the parallel report's deterministic
    payload must match the serial one byte for byte, both runs' walls
    land in ``extra`` with the speedup, and the checksum is fed from
    the serial report alone. On a one-core host the two workers time-
    slice, so ``parallel_speedup <= 1.0`` is the honest expectation.
    """
    from repro.faults import default_plan, run_chaos

    started = time.perf_counter()
    report = run_chaos(plan=default_plan(seed), seed=seed, quick=quick, jobs=1)
    serial_wall = time.perf_counter() - started
    if not report.ok:
        raise AssertionError(
            "chaos_stress broke the graceful-degradation contract:\n"
            + report.to_text()
        )
    warm_pool(2)
    started = time.perf_counter()
    parallel = run_chaos(plan=default_plan(seed), seed=seed, quick=quick, jobs=2)
    parallel_wall = time.perf_counter() - started
    serial_dict, parallel_dict = report.to_dict(), parallel.to_dict()
    for volatile in ("wall_s", "baseline_wall_s", "events_per_sec", "mode"):
        serial_dict.pop(volatile)
        parallel_dict.pop(volatile)
    if parallel.lines != report.lines or parallel_dict != serial_dict:
        raise AssertionError(
            "parallel chaos legs diverged from serial execution — the "
            "per-leg determinism contract of repro.faults.harness is broken"
        )
    extra = {
        "clients": report.clients,
        "plan_faults": sum(report.plan_faults.values()),
        "faults_injected": report.faults_injected,
        "retries": report.retries,
        "fallbacks": sum(report.fallbacks.values()),
        "quarantines": report.quarantines,
        "goodput": round(report.goodput, 4),
        "completion_rate": report.completion_rate,
        "chaos_leg_events": report.events,
        "baseline_leg_events": report.baseline_events,
        "parallel_mode": parallel.mode,
        "legs_serial_wall_s": round(serial_wall, 6),
        "legs_parallel_wall_s": round(parallel_wall, 6),
        "parallel_speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0 else 0.0,
    }
    events = (
        report.events
        + report.baseline_events
        + parallel.events
        + parallel.baseline_events
    )
    sim_seconds = (
        report.sim_seconds
        + report.baseline_sim_seconds
        + parallel.sim_seconds
        + parallel.baseline_sim_seconds
    )
    return events, sim_seconds, report.lines, extra


#: Flash-crowd shape knobs (shared by the scenario and its committed
#: chaos plan; see benchmarks/flash_crowd_plan.json).
_FLASH_HORIZON_S = 30.0
_FLASH_SPIKE_AT_S = 10.0
_FLASH_SPIKE_DURATION_S = 5.0
_FLASH_SPIKE_FACTOR = 10.0
_FLASH_DEADLINE_S = 15.0
_FLASH_GOODPUT_FLOOR = 0.5
#: Resident background processes during the crowd (kept below the
#: ladder's exit thresholds so brownout can actually clear).
_FLASH_BACKGROUND = 10


def flash_crowd_plan():
    """The faults that strike *inside* the flash-crowd spike window:
    the FPGA drops off the bus mid-surge and the scheduler's replies
    crawl right after — overload protection has to ride out both.
    Committed as ``benchmarks/flash_crowd_plan.json`` for the CLI."""
    from repro.faults import FaultPlan, FaultSpec

    return FaultPlan(
        specs=(
            FaultSpec(at_s=11.0, kind="device_crash", duration_s=3.0),
            FaultSpec(at_s=12.0, kind="server_slow", duration_s=2.0, factor=20.0),
        ),
        seed=0,
    )


def _flash_crowd_inputs(seed: int, quick: bool):
    """The flash_crowd scenario's shared inputs: the generated trace,
    the committed fault plan, the overload guard, and the SLO bar.

    The crowd is the *interactive* benchmark tier (face detection and
    digit recognition) — the apps with latency SLOs a flash crowd can
    actually violate; the long-running batch apps would dominate every
    p99 regardless of protection. The guard's working lever here is
    deadline-aware shedding with a load-proportional completion
    estimate (``deadline_load_cost_s``): it sheds exactly the clients
    whose deadlines are already forfeit, which is what pulls the
    admitted tail back under the SLO. The ladder rungs sit high
    (x86-only at 70, shed at 120) as the catastrophic-regime backstop —
    forcing x86-only *earlier* would take the FPGA out of service and
    make the tail worse, not better.
    """
    from repro.faults import OverloadConfig, ResilienceConfig
    from repro.traffic import SLOTarget, SpikeWindow, TrafficSpec, generate_trace

    spec = TrafficSpec(
        apps=("digit.500", "facedet.320", "facedet.640"),
        base_rate_per_s=2.0 if quick else 3.0,
        horizon_s=_FLASH_HORIZON_S,
        diurnal_period_s=_FLASH_HORIZON_S,
        diurnal_amplitude=0.4,
        spikes=(
            SpikeWindow(
                at_s=_FLASH_SPIKE_AT_S,
                duration_s=_FLASH_SPIKE_DURATION_S,
                factor=_FLASH_SPIKE_FACTOR,
            ),
        ),
        calls_alpha=1.5,
        calls_max=4,
        deadline_s=_FLASH_DEADLINE_S,
        seed=seed,
    )
    trace = generate_trace(spec)
    protected = ResilienceConfig(
        overload=OverloadConfig(
            x86_only_enter_load=70.0,
            x86_only_exit_load=40.0,
            shed_enter_load=120.0,
            shed_exit_load=60.0,
            deadline_load_cost_s=0.25,
        )
    )
    slo = tuple(
        SLOTarget(app, p99_latency_s=_FLASH_DEADLINE_S, goodput_floor=0.3)
        for app in spec.apps
    )
    return trace, flash_crowd_plan(), protected, slo


def _scenario_flash_crowd(seed: int, quick: bool, ctx: BenchContext):
    """Overload shape: a trace-driven flash crowd over a mid-surge
    device crash and a slow-scheduler window.

    A seeded open-loop trace (diurnal base load, one 10x spike,
    heavy-tailed session lengths, per-client deadlines) is replayed
    twice through the chaos harness:

    * **protected** — admission control, deadline-aware shedding, and
      the brownout ladder armed (``ResilienceConfig(overload=...)``),
      judged by the brownout contract: goodput over the floor, every
      shed client explicitly accounted, admitted outcomes bit-identical
      to the fault-free leg, and every app's SLO met;
    * **unprotected** — the identical trace and faults with the
      overload guard off. The point of this leg is to *fail* the p99
      SLO: it proves the spike is genuinely lethal and the protected
      leg's pass is the guard's doing, not a tame workload. Lethality
      is a property of the *committed* trace, so the assertion is
      pinned to the bench's default seed; alternate seeds (the queue
      differential runs every scenario at seed 5) still execute the
      control leg and record its scores, they just don't demand a
      violation from whatever crowd that seed happens to draw.

    The protected harness also re-runs with its legs in two pool
    workers and must match the serial report byte for byte (shed
    decisions and SLO scores are part of the checksummed payload).
    The before/after p99s and shed accounting land in ``extra``.
    """
    from repro.faults import BrownoutCriteria, run_chaos

    trace, plan, protected_config, slo = _flash_crowd_inputs(seed, quick)
    brownout = BrownoutCriteria(goodput_floor=_FLASH_GOODPUT_FLOOR)

    started = time.perf_counter()
    report = run_chaos(
        plan=plan, seed=seed, config=protected_config, jobs=1,
        background=_FLASH_BACKGROUND, traffic=trace, brownout=brownout,
        slo=slo, horizon_s=_FLASH_HORIZON_S,
    )
    serial_wall = time.perf_counter() - started
    if not report.ok:
        raise AssertionError(
            "flash_crowd broke the brownout contract with overload "
            "protection armed:\n" + report.to_text()
        )
    slo_failures = [
        app for app, score in report.slo.items() if score["violations"]
    ]
    if slo_failures:
        raise AssertionError(
            "flash_crowd violated SLOs with overload protection armed "
            f"({', '.join(sorted(slo_failures))}):\n" + report.to_text()
        )

    warm_pool(2)
    started = time.perf_counter()
    parallel = run_chaos(
        plan=plan, seed=seed, config=protected_config, jobs=2,
        background=_FLASH_BACKGROUND, traffic=trace, brownout=brownout,
        slo=slo, horizon_s=_FLASH_HORIZON_S,
    )
    parallel_wall = time.perf_counter() - started
    serial_dict, parallel_dict = report.to_dict(), parallel.to_dict()
    for volatile in ("wall_s", "baseline_wall_s", "events_per_sec", "mode"):
        serial_dict.pop(volatile)
        parallel_dict.pop(volatile)
    if parallel.lines != report.lines or parallel_dict != serial_dict:
        raise AssertionError(
            "parallel flash_crowd legs diverged from serial execution — "
            "shed decisions or SLO scores are not replay-stable"
        )

    # The control leg: same trace, same faults, overload guard off.
    unprotected = run_chaos(
        plan=plan, seed=seed, config=None, jobs=1,
        background=_FLASH_BACKGROUND, traffic=trace, slo=slo,
        horizon_s=_FLASH_HORIZON_S,
    )
    violated = sorted(
        app
        for app, score in unprotected.slo.items()
        if "p99_latency" in score["violations"]
    )
    if not violated and seed == 0:
        raise AssertionError(
            "flash_crowd's unprotected control leg met every p99 SLO — "
            "the spike is not stressing the system and the protected "
            "leg proves nothing:\n" + unprotected.to_text()
        )

    def _p99s(chaos_report):
        return {
            app: score["p99_latency_s"]
            for app, score in sorted(chaos_report.slo.items())
        }

    extra = {
        "clients": report.clients,
        "spike_factor": _FLASH_SPIKE_FACTOR,
        "goodput_floor": _FLASH_GOODPUT_FLOOR,
        "protected_goodput": round(report.completion_rate, 4),
        "shed": dict(sorted(report.shed.items())),
        "unaccounted": report.unaccounted,
        "protected_p99_s": _p99s(report),
        "unprotected_p99_s": _p99s(unprotected),
        "unprotected_p99_violations": violated,
        "unprotected_goodput": round(unprotected.completion_rate, 4),
        "parallel_mode": parallel.mode,
        "legs_serial_wall_s": round(serial_wall, 6),
        "legs_parallel_wall_s": round(parallel_wall, 6),
        "parallel_speedup": round(serial_wall / parallel_wall, 2)
        if parallel_wall > 0 else 0.0,
    }
    events = (
        report.events
        + report.baseline_events
        + parallel.events
        + parallel.baseline_events
        + unprotected.events
        + unprotected.baseline_events
    )
    sim_seconds = (
        report.sim_seconds
        + report.baseline_sim_seconds
        + parallel.sim_seconds
        + parallel.baseline_sim_seconds
        + unprotected.sim_seconds
        + unprotected.baseline_sim_seconds
    )
    return events, sim_seconds, report.lines, extra


#: name -> callable(seed, quick, ctx) ->
#: (events, sim_seconds, checksum_lines[, extra])
SCENARIOS: dict[str, Callable[..., tuple]] = {
    "fig3_low_load": _scenario_fig3_low_load,
    "fig5_high_load": _scenario_fig5_high_load,
    "fig6_throughput": _scenario_fig6_throughput,
    "report_sweep": _scenario_report_sweep,
    "scale_stress": _scenario_scale_stress,
    "cohort_stress": _scenario_cohort_stress,
    "chaos_stress": _scenario_chaos_stress,
    "fleet_stress": _scenario_fleet_stress,
    "flash_crowd": _scenario_flash_crowd,
}


def available_scenarios() -> tuple[str, ...]:
    return tuple(SCENARIOS)


@dataclass
class ScenarioResult:
    """One timed scenario run."""

    name: str
    wall_s: float
    events: int
    sim_seconds: float
    peak_rss_bytes: int
    checksum: str
    #: Scenario-specific payload (e.g. report_sweep's serial/parallel
    #: wall clocks and speedups); empty for plain timing scenarios.
    extra: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_seconds": round(self.sim_seconds, 6),
            "peak_rss_bytes": self.peak_rss_bytes,
            "checksum": self.checksum,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload


@dataclass
class BenchReport:
    """All scenario results plus environment context."""

    seed: int
    quick: bool
    results: list[ScenarioResult] = field(default_factory=list)
    #: Optional reference wall times (name -> seconds) for speedups.
    baseline_wall_s: dict[str, float] = field(default_factory=dict)

    def speedups(self) -> dict[str, float]:
        """Baseline wall time / this run's wall time, per scenario."""
        out = {}
        for result in self.results:
            base = self.baseline_wall_s.get(result.name)
            if base and result.wall_s > 0:
                out[result.name] = base / result.wall_s
        return out

    def new_scenarios(self) -> list[str]:
        """Scenarios this run timed that the baseline never did.

        Only meaningful with a baseline loaded; a scenario added since
        the baseline was committed has no speedup to report, but must
        show up as *new* rather than silently vanish from the
        comparison.
        """
        if not self.baseline_wall_s:
            return []
        return [
            result.name
            for result in self.results
            if result.name not in self.baseline_wall_s
        ]

    def to_dict(self) -> dict:
        payload = {
            "schema": "xar-trek-bench/1",
            "python": _platform.python_version(),
            "seed": self.seed,
            "quick": self.quick,
            "scenarios": [result.to_dict() for result in self.results],
        }
        if self.baseline_wall_s:
            payload["baseline_wall_s"] = {
                name: round(value, 6)
                for name, value in sorted(self.baseline_wall_s.items())
            }
            payload["speedup_vs_baseline"] = {
                name: round(value, 2) for name, value in sorted(self.speedups().items())
            }
            new = self.new_scenarios()
            if new:
                payload["new_vs_baseline"] = new
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def to_text(self) -> str:
        lines = [
            f"{'scenario':<18} {'wall (s)':>9} {'events':>9} {'events/s':>10} "
            f"{'sim (s)':>9} {'peak RSS':>9}"
        ]
        for result in self.results:
            lines.append(
                f"{result.name:<18} {result.wall_s:>9.3f} {result.events:>9d} "
                f"{result.events_per_sec:>10.0f} {result.sim_seconds:>9.1f} "
                f"{result.peak_rss_bytes / 2**20:>7.1f}MB"
            )
            if result.extra:
                detail = ", ".join(f"{k}={v}" for k, v in result.extra.items())
                lines.append(f"  {result.name} extra: {detail}")
        for name, speedup in sorted(self.speedups().items()):
            lines.append(f"{name}: {speedup:.2f}x vs baseline")
        for name in self.new_scenarios():
            lines.append(f"{name}: new scenario (not in baseline)")
        return "\n".join(lines)


#: Rows of the per-scenario hot-function table in profiling mode.
_PROFILE_TOP_N = 15


def _profile_table(profiler) -> list[dict]:
    """Top cumulative-time rows of a finished cProfile run.

    Rows are ``{"function", "ncalls", "tottime_s", "cumtime_s"}``
    sorted by cumulative time — the same view ``pstats`` prints, but
    JSON-serializable so it can ride in a scenario's ``extra``.
    """
    import pstats

    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        short = filename
        marker = "/repro/"
        cut = short.rfind(marker)
        if cut != -1:
            short = short[cut + 1 :]
        rows.append(
            {
                "function": f"{short}:{lineno}({func})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
    return rows[:_PROFILE_TOP_N]


def run_scenario(
    name: str,
    seed: int = 0,
    quick: bool = False,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    profile: bool = False,
    profile_out: Optional[str] = None,
) -> ScenarioResult:
    """Time one named scenario; see :data:`SCENARIOS`.

    With ``profile=True`` the scenario runs under :mod:`cProfile`: the
    top cumulative-time functions land in ``extra["profile"]`` and,
    when ``profile_out`` names a directory, the raw stats are dumped to
    ``<profile_out>/<name>.pstats`` for ``pstats``/``snakeviz``-style
    drill-down. Profiling slows the run several-fold, so profiled wall
    clocks and events/sec are for *relative* attribution only — never
    compare them against an unprofiled baseline or feed them to the
    events/sec guard.
    """
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench scenario {name!r}; pick from {sorted(SCENARIOS)}"
        ) from None
    ctx = BenchContext(jobs=resolve_jobs(jobs), cache_dir=cache_dir)
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        outcome = fn(seed, quick, ctx)
    finally:
        if profiler is not None:
            profiler.disable()
    wall_s = time.perf_counter() - started
    events, sim_seconds, lines = outcome[:3]
    extra = outcome[3] if len(outcome) > 3 else {}
    # Deferred extras: a scenario that wants side measurements which
    # must NOT bill to its own timed window (e.g. scale_stress's
    # queue-implementation head-to-head) returns a zero-arg callable;
    # it runs here, after the clock stopped, and its result replaces
    # the callable in the payload.
    for key, value in list(extra.items()):
        if callable(value):
            extra[key] = value()
    if profiler is not None:
        extra = dict(extra)
        extra["profile"] = _profile_table(profiler)
        if profile_out:
            os.makedirs(profile_out, exist_ok=True)
            dump_path = os.path.join(profile_out, f"{name}.pstats")
            profiler.dump_stats(dump_path)
            extra["profile_stats_path"] = dump_path
    return ScenarioResult(
        name=name,
        wall_s=wall_s,
        events=events,
        sim_seconds=sim_seconds,
        peak_rss_bytes=_peak_rss_bytes(),
        checksum=_checksum(lines),
        extra=extra,
    )


def load_report_entries(path: str) -> dict[str, dict]:
    """Read a committed bench JSON; returns scenario name -> full entry.

    Refuses a baseline whose ``schema`` field is missing or different —
    numbers from another schema generation are not comparable, and a
    silent mismatch would make the reported speedups fiction.
    """
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != _SCHEMA:
        raise ValueError(
            f"baseline {path!r} has schema {schema!r}, expected {_SCHEMA!r}; "
            "regenerate it with `python -m repro bench --json <file>` "
            "before comparing against it"
        )
    return {entry["name"]: entry for entry in payload.get("scenarios", [])}


def load_report(path: str) -> dict[str, float]:
    """Like :func:`load_report_entries` but projected to wall seconds."""
    return {
        name: float(entry["wall_s"])
        for name, entry in load_report_entries(path).items()
    }


def guard_events_per_sec(
    report: BenchReport, baseline_path: str, max_drop: float = 0.30
) -> list[str]:
    """The CI regression tripwire: events/sec vs a committed report.

    Events/sec is a *rate*, so a quick run is comparable against the
    committed full-mode figure even though the event totals differ.
    Returns one failure message per scenario whose rate dropped more
    than ``max_drop`` below the baseline's; scenarios the baseline
    never timed (or timed with a zero rate) are skipped — they have
    nothing to regress against.
    """
    entries = load_report_entries(baseline_path)
    failures = []
    for result in report.results:
        base = entries.get(result.name, {}).get("events_per_sec")
        if not base:
            continue
        floor = float(base) * (1.0 - max_drop)
        if result.events_per_sec < floor:
            failures.append(
                f"{result.name}: {result.events_per_sec:.0f} events/sec is "
                f"more than {max_drop:.0%} below the committed "
                f"{float(base):.0f} (floor {floor:.0f})"
            )
    return failures


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    quick: bool = False,
    baseline: Optional[str] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    profile: bool = False,
    profile_out: Optional[str] = None,
) -> BenchReport:
    """Run the named scenarios (default: all) and collect a report.

    ``profile``/``profile_out`` run every scenario under cProfile (see
    :func:`run_scenario`); the numbers then measure *where time goes*,
    not how fast the simulator is.
    """
    report = BenchReport(seed=seed, quick=quick)
    if baseline:
        report.baseline_wall_s = load_report(baseline)
    for name in scenarios or available_scenarios():
        report.results.append(
            run_scenario(
                name,
                seed=seed,
                quick=quick,
                jobs=jobs,
                cache_dir=cache_dir,
                profile=profile,
                profile_out=profile_out,
            )
        )
    return report
