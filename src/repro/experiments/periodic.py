"""Figures 7-8: periodic (wave) workloads.

Datacenter loads are time-varying (Section 4.3). Two experiments:

* Figure 7: thirty waves of 20 applications, one wave every 30 s over a
  ~43-minute frame; the overlap of slow waves pushes the process count
  from 20 (medium) toward 160 (high) and back. Metric: average
  execution time over all 600 runs.
* Figure 8: a background process count that waves between 10 and 120
  over ~35 minutes while the multi-image face-detection app runs ten
  60-second windows. Metric: average images/second.
"""

from __future__ import annotations

import numpy as np

from repro.core import SystemMode, XarTrekRuntime, build_system
from repro.experiments.harness import MODE_LABELS, sample_application_set
from repro.experiments.report import ExperimentResult
from repro.workloads import PAPER_BENCHMARKS, profile_for

__all__ = [
    "WaveLoad",
    "run_periodic_execution",
    "figure7_periodic_execution",
    "run_periodic_throughput",
    "figure8_periodic_throughput",
]

_MODES = (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)


class WaveLoad:
    """A background worker pool whose size tracks a triangle wave.

    Workers run MG-B rounds on the x86 host; every ``step_s`` the quota
    is recomputed from the wave and workers above the quota exit after
    their current round.
    """

    def __init__(
        self,
        runtime: XarTrekRuntime,
        low: int,
        high: int,
        period_s: float,
        duration_s: float,
        step_s: float = 15.0,
        work_s: float | None = None,
    ):
        if low < 0 or high < low:
            raise ValueError(f"bad wave bounds [{low}, {high}]")
        self.runtime = runtime
        self.low = low
        self.high = high
        self.period_s = period_s
        self.duration_s = duration_s
        self.step_s = step_s
        self.work_s = work_s if work_s is not None else profile_for("mg.B").vanilla_x86_s
        self._quota = 0
        self._active = 0
        self._stopped = False
        runtime.platform.sim.spawn(self._controller())

    def target_at(self, t: float) -> int:
        """The triangle wave: low -> high -> low each period."""
        phase = (t % self.period_s) / self.period_s
        tri = 2 * phase if phase < 0.5 else 2 * (1 - phase)
        return int(round(self.low + (self.high - self.low) * tri))

    def _controller(self):
        sim = self.runtime.platform.sim
        start = sim.now
        while not self._stopped and sim.now - start < self.duration_s:
            self._quota = self.target_at(sim.now - start)
            while self._active < self._quota:
                self._active += 1
                sim.spawn(self._worker(self._active))
            yield sim.timeout(self.step_s)
        self._quota = 0

    def _worker(self, index: int):
        x86 = self.runtime.platform.x86.cpu
        while not self._stopped and index <= self._quota:
            yield x86.execute(self.work_s, tag="wave-background")

    def stop(self) -> None:
        self._stopped = True


def run_periodic_execution(
    mode: SystemMode,
    n_waves: int = 30,
    wave_size: int = 20,
    interval_s: float = 30.0,
    repeats_seed: int = 0,
) -> float:
    """One Figure 7 run: average execution time (s) across all launches."""
    rng = np.random.default_rng(repeats_seed)
    runtime = build_system(PAPER_BENCHMARKS, seed=repeats_seed)
    events = []
    for wave in range(n_waves):
        apps = sample_application_set(rng, wave_size)
        for i, app in enumerate(apps):
            events.append(
                runtime.launch(
                    app,
                    seed=wave * 1000 + i,
                    mode=mode,
                    delay_s=wave * interval_s + 0.01,
                )
            )
    records = runtime.wait_all(events)
    return float(np.mean([rec.elapsed_s for rec in records]))


def figure7_periodic_execution(
    n_waves: int = 30,
    wave_size: int = 20,
    interval_s: float = 30.0,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 7's three bars."""
    result = ExperimentResult(
        name="Figure 7: periodic workload, average execution time",
        headers=["system", "avg execution time (ms)"],
    )
    for mode in _MODES:
        avg_s = run_periodic_execution(
            mode, n_waves=n_waves, wave_size=wave_size,
            interval_s=interval_s, repeats_seed=seed,
        )
        result.rows.append([MODE_LABELS[mode], avg_s * 1e3])
    result.notes = (
        "Paper: Xar-Trek outperforms Vanilla/x86 by 18% and Vanilla/FPGA "
        "by 32%; gains are smaller than fixed loads because medium/high "
        "load is not sustained."
    )
    return result


def run_periodic_throughput(
    mode: SystemMode,
    n_runs: int = 10,
    window_s: float = 60.0,
    n_images: int = 1000,
    wave_low: int = 10,
    wave_high: int = 120,
    frame_s: float = 35 * 60.0,
    seed: int = 0,
) -> float:
    """One Figure 8 run: mean images/second over ``n_runs`` windows."""
    runtime = build_system(["facedet.320"], seed=seed)
    wave = WaveLoad(
        runtime, low=wave_low, high=wave_high,
        period_s=frame_s / 2, duration_s=frame_s,
    )
    gap = (frame_s - n_runs * window_s) / max(1, n_runs)
    events = []
    for run_index in range(n_runs):
        events.append(
            runtime.launch(
                "facedet.320",
                seed=seed * 100 + run_index,
                mode=mode,
                calls=n_images,
                deadline_s=window_s,
                delay_s=run_index * (window_s + gap) + 0.01,
            )
        )
    records = runtime.wait_all(events)
    wave.stop()
    return float(np.mean([rec.calls_completed / window_s for rec in records]))


def figure8_periodic_throughput(seed: int = 0, **kwargs) -> ExperimentResult:
    """Figure 8's three bars."""
    result = ExperimentResult(
        name="Figure 8: periodic workload, face-detection throughput",
        headers=["system", "throughput (img/s)"],
    )
    for mode in _MODES:
        result.rows.append(
            [MODE_LABELS[mode], run_periodic_throughput(mode, seed=seed, **kwargs)]
        )
    result.notes = (
        "Paper: Xar-Trek outperforms Vanilla/x86 by 175% and "
        "Vanilla/FPGA by 50%; smaller than Figure 6's fixed-load gains."
    )
    return result
