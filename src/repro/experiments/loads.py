"""Table 3: the paper's CPU-load classes.

Low/medium/high are defined by the ratio of application processes to
available cores (6 x86 + 96 ARM = 102 in the testbed). Experiments use
:func:`classify_load` to pick background sizes; the table itself is
regenerated for the configured platform.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.hardware.platform import THUNDERX, XEON_BRONZE_3104

__all__ = ["LoadClass", "classify_load", "table3_load_classes"]


class LoadClass:
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


def classify_load(
    n_processes: int,
    x86_cores: int = XEON_BRONZE_3104.cores,
    arm_cores: int = THUNDERX.cores,
) -> str:
    """Table 3's classification for a process count."""
    if n_processes < 0:
        raise ValueError(f"negative process count {n_processes}")
    if n_processes < x86_cores:
        return LoadClass.LOW
    if n_processes <= x86_cores + arm_cores:
        return LoadClass.MEDIUM
    return LoadClass.HIGH


def table3_load_classes(
    x86_cores: int = XEON_BRONZE_3104.cores,
    arm_cores: int = THUNDERX.cores,
) -> ExperimentResult:
    """Table 3 for the given core counts."""
    total = x86_cores + arm_cores
    result = ExperimentResult(
        name="Table 3: CPU load definition",
        headers=["CPU load", "range of number of processes"],
        rows=[
            [LoadClass.LOW, f"#processes < {x86_cores} (#x86 cores)"],
            [
                LoadClass.MEDIUM,
                f"{x86_cores} <= #processes <= {total} (#x86 + #ARM cores)",
            ],
            [LoadClass.HIGH, f"#processes > {total}"],
        ],
        notes=f"Total cores available: {total} ({x86_cores} x86 + {arm_cores} ARM).",
    )
    return result
