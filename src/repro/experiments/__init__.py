"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.binaries import figure10_binary_sizes
from repro.experiments.fixed_workload import (
    figure3_low_load,
    figure4_medium_load,
    figure5_high_load,
    fixed_workload_sweep,
    gains_over,
)
from repro.experiments.harness import (
    MODE_LABELS,
    SetOutcome,
    average_execution_time,
    run_application_set,
    sample_application_set,
)
from repro.experiments.loads import LoadClass, classify_load, table3_load_classes
from repro.experiments.observability import (
    MetricsRun,
    high_load_metrics,
    metrics_experiment,
)
from repro.experiments.periodic import (
    WaveLoad,
    figure7_periodic_execution,
    figure8_periodic_throughput,
    run_periodic_execution,
    run_periodic_throughput,
)
from repro.experiments.profitability import figure9_profitability, profitability_point
from repro.experiments.report import (
    ExperimentResult,
    format_table,
    generate_report,
    metrics_section,
    percent_gain,
    sweep_stats_section,
)
from repro.experiments.sensitivity import (
    arm_capacity_sensitivity,
    background_duty_sensitivity,
    interconnect_sensitivity,
    reconfig_time_sensitivity,
)
from repro.experiments.sweep import (
    Cell,
    CellResult,
    SweepCache,
    SweepOutcome,
    SweepStats,
    cells_for_sets,
    cells_for_throughput,
    derive_seeds,
    results_checksum,
    run_cell,
    run_cells,
    sweep_metrics,
)
from repro.experiments.tables import (
    measure_scenario,
    run_scenario_on,
    table1_execution_times,
    table2_thresholds,
    table4_bfs,
)
from repro.experiments.throughput import figure6_throughput, measure_throughput
from repro.experiments.timeline import Timeline, TimelineEvent, extract_timeline

__all__ = [
    "Cell",
    "CellResult",
    "ExperimentResult",
    "LoadClass",
    "MODE_LABELS",
    "MetricsRun",
    "SetOutcome",
    "SweepCache",
    "SweepOutcome",
    "SweepStats",
    "Timeline",
    "TimelineEvent",
    "WaveLoad",
    "cells_for_sets",
    "cells_for_throughput",
    "derive_seeds",
    "extract_timeline",
    "generate_report",
    "results_checksum",
    "run_cell",
    "run_cells",
    "run_scenario_on",
    "sweep_metrics",
    "sweep_stats_section",
    "arm_capacity_sensitivity",
    "average_execution_time",
    "background_duty_sensitivity",
    "classify_load",
    "interconnect_sensitivity",
    "reconfig_time_sensitivity",
    "figure10_binary_sizes",
    "figure3_low_load",
    "figure4_medium_load",
    "figure5_high_load",
    "figure6_throughput",
    "figure7_periodic_execution",
    "figure8_periodic_throughput",
    "figure9_profitability",
    "fixed_workload_sweep",
    "format_table",
    "gains_over",
    "high_load_metrics",
    "measure_scenario",
    "measure_throughput",
    "metrics_experiment",
    "metrics_section",
    "percent_gain",
    "profitability_point",
    "run_application_set",
    "run_periodic_execution",
    "run_periodic_throughput",
    "sample_application_set",
    "table1_execution_times",
    "table2_thresholds",
    "table3_load_classes",
    "table4_bfs",
]
