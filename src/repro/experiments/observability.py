"""Metrics-instrumented experiment runs (the observability harness).

The Figures 3-8 experiments report *averages*; this module runs the
same scenarios and keeps the full metrics snapshot, so a single run can
answer the distributional questions the scheduler work needs — per-
target invocation-latency p50/p95/p99, the scheduler round-trip
histogram, total reconfiguration time and how much of it hid behind CPU
execution. Snapshots are deterministic under the seed: two runs of
:func:`high_load_metrics` with the same arguments export byte-identical
JSON/CSV, which is what regression-gating a perf PR needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core import SystemMode
from repro.experiments.harness import run_application_set, sample_application_set
from repro.experiments.report import ExperimentResult, metrics_section
from repro.metrics import to_csv, to_json
from repro.workloads import PAPER_BENCHMARKS

__all__ = [
    "MetricsRun",
    "high_load_metrics",
    "metrics_experiment",
]


class MetricsRun:
    """One instrumented run: the outcome plus its exports."""

    def __init__(self, outcome, name: str):
        self.outcome = outcome
        self.name = name

    @property
    def snapshot(self) -> dict:
        return self.outcome.metrics

    def report(self) -> ExperimentResult:
        result = metrics_section(self.snapshot, name=self.name)
        result.notes = (
            f"apps={','.join(self.outcome.apps)}; "
            f"mode={self.outcome.mode.value}; "
            f"set average {self.outcome.average_s * 1e3:.1f} ms"
        )
        return result

    def to_json(self) -> str:
        return to_json(self.snapshot)

    def to_csv(self) -> str:
        return to_csv(self.snapshot)


def metrics_experiment(
    apps: Sequence[str],
    mode: SystemMode = SystemMode.XAR_TREK,
    background: int = 0,
    seed: int = 0,
    name: Optional[str] = None,
) -> MetricsRun:
    """Run ``apps`` concurrently and keep the full metrics snapshot."""
    outcome = run_application_set(apps, mode, background=background, seed=seed)
    label = name or (
        f"Metrics: {len(apps)} apps + {background} background ({mode.value})"
    )
    return MetricsRun(outcome, label)


def high_load_metrics(
    set_size: int = 10,
    total_processes: int = 120,
    mode: SystemMode = SystemMode.XAR_TREK,
    seed: int = 0,
    pool: Sequence[str] = PAPER_BENCHMARKS,
) -> MetricsRun:
    """A Figure-5-style high-load run, instrumented.

    Samples ``set_size`` applications exactly like Figure 5's randomized
    sets and tops the process count up to ``total_processes`` with MG-B
    background — more processes than the testbed's 102 cores.
    """
    rng = np.random.default_rng(seed)
    apps = sample_application_set(rng, set_size, pool)
    background = max(0, total_processes - set_size)
    return metrics_experiment(
        apps,
        mode=mode,
        background=background,
        seed=seed,
        name=(
            f"Metrics: Figure-5-style high load "
            f"({set_size} apps, {total_processes} processes, {mode.value})"
        ),
    )
