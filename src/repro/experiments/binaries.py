"""Figure 10: size of binaries.

Compares, per application, the artifact sizes of three development
processes: traditional FPGA (x86 executable + XCLBIN), Popcorn
(multi-ISA executable), and Xar-Trek (multi-ISA executable + XCLBIN).
Each application is compiled through its own pipeline run (one XCLBIN
per application, as a per-application development flow produces).
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler import (
    CodeModel,
    ProfilingSpec,
    XarTrekCompiler,
    size_breakdown,
)
from repro.compiler.profiling import ApplicationSpec, SelectedFunction
from repro.experiments.report import ExperimentResult
from repro.workloads import PAPER_BENCHMARKS, profile_for

__all__ = ["figure10_binary_sizes"]


def figure10_binary_sizes(
    app_names: Sequence[str] = PAPER_BENCHMARKS,
) -> ExperimentResult:
    """Figure 10's three bars per application, in MB."""
    result = ExperimentResult(
        name="Figure 10: size of binaries (MB)",
        headers=[
            "application",
            "x86+FPGA (MB)",
            "Popcorn x86+ARM (MB)",
            "Xar-Trek (MB)",
            "increase vs x86+FPGA (%)",
            "increase vs Popcorn (%)",
        ],
    )
    compiler = XarTrekCompiler()
    for name in app_names:
        profile = profile_for(name)
        spec = ProfilingSpec(
            platform="alveo-u50",
            applications=(
                ApplicationSpec(
                    name=name,
                    functions=(SelectedFunction("kernel", profile.kernel_name),),
                ),
            ),
        )
        compiled = compiler.compile(spec)
        xclbin = compiled.xclbin_for(profile.kernel_name)
        code = CodeModel(application=name, loc=profile.loc, selected_functions=("kernel",))
        breakdown = size_breakdown(code, xclbin)
        result.rows.append(
            [
                name,
                breakdown.x86_fpga / 1e6,
                breakdown.popcorn / 1e6,
                breakdown.xar_trek / 1e6,
                breakdown.increase_vs_x86_fpga * 100,
                breakdown.increase_vs_popcorn * 100,
            ]
        )
    result.notes = (
        "Paper: Xar-Trek is always largest (it subsumes both baselines; "
        "increases between 33% and 282%); Popcorn's CG-A binary is "
        "visibly larger than the others due to its 900 LOC."
    )
    return result
