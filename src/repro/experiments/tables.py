"""Tables 1, 2, and 4: execution times, thresholds, and the BFS study.

Each function regenerates one of the paper's tables by running the
simulated system (not by echoing the calibration constants): Table 1
measures each benchmark end-to-end in the DES under each migration
scenario; Table 2 runs step G's estimation tool; Table 4 runs the real
BFS workload functionally and reports the modelled per-target times.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compiler.threshold_estimation import estimate_thresholds
from repro.core import SystemMode, build_system
from repro.experiments.report import ExperimentResult
from repro.workloads import (
    PAPER_BENCHMARKS,
    PAPER_TABLE1_MS,
    PAPER_TABLE2,
    PAPER_TABLE4_MS,
    create_workload,
    profile_for,
)

__all__ = [
    "measure_scenario",
    "run_scenario_on",
    "table1_execution_times",
    "table2_thresholds",
    "table4_bfs",
]

#: Table 1's column order of scenarios.
_TABLE1_SCENARIOS = ("x86", "fpga", "arm")


def run_scenario_on(runtime, app_name: str, scenario: str, seed: int = 0) -> float:
    """One benchmark, alone, under one of Table 1's three scenarios,
    on an already-deployed runtime.

    ``scenario`` is ``x86``, ``fpga`` (card preconfigured, as the paper
    measures it), or ``arm`` (forced migration via the threshold table).
    """
    if scenario == "x86":
        done = runtime.launch(app_name, seed=seed, mode=SystemMode.VANILLA_X86)
    elif scenario == "fpga":
        runtime.platform.sim.run_until_event(runtime.preload_fpga())
        done = runtime.launch(app_name, seed=seed, mode=SystemMode.ALWAYS_FPGA)
    elif scenario == "arm":
        entry = runtime.server.thresholds.entry(app_name)
        entry.fpga_threshold = float("inf")
        entry.arm_threshold = 0.0
        done = runtime.launch(app_name, seed=seed, mode=SystemMode.XAR_TREK)
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    record = runtime.platform.sim.run_until_event(done)
    return record.elapsed_s


def measure_scenario(app_name: str, scenario: str, seed: int = 0) -> float:
    """:func:`run_scenario_on` against a fresh single-app deployment."""
    return run_scenario_on(build_system([app_name], seed=seed), app_name, scenario, seed)


def table1_execution_times(
    seed: int = 0, jobs: Optional[int] = None, cache=None
) -> ExperimentResult:
    """Table 1: per-benchmark times under vanilla x86 / x86+FPGA / x86+ARM."""
    from repro.experiments.sweep import Cell, run_cells

    result = ExperimentResult(
        name="Table 1: benchmark execution times (ms)",
        headers=[
            "benchmark",
            "Vanilla Linux x86 (ms)",
            "Xar-Trek x86/FPGA (ms)",
            "Xar-Trek x86/ARM (ms)",
            "paper (x86/FPGA/ARM)",
        ],
    )
    cells = [
        Cell(
            kind="scenario",
            apps=(name,),
            mode=SystemMode.XAR_TREK,
            seed=seed,
            scenario=scenario,
        )
        for name in PAPER_BENCHMARKS
        for scenario in _TABLE1_SCENARIOS
    ]
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    per_app = len(_TABLE1_SCENARIOS)
    for index, name in enumerate(PAPER_BENCHMARKS):
        x86_s, fpga_s, arm_s = (
            float(r.value)
            for r in sweep.results[index * per_app : (index + 1) * per_app]
        )
        result.rows.append(
            [name, x86_s * 1e3, fpga_s * 1e3, arm_s * 1e3, PAPER_TABLE1_MS[name]]
        )
    return result


def table2_thresholds(max_load: int = 256) -> ExperimentResult:
    """Table 2: step G's estimated thresholds vs the paper's."""
    table = estimate_thresholds(
        [profile_for(name) for name in PAPER_BENCHMARKS], max_load=max_load
    )
    result = ExperimentResult(
        name="Table 2: Xar-Trek threshold estimation",
        headers=[
            "benchmark",
            "HW kernel",
            "FPGA_THR",
            "ARM_THR",
            "paper FPGA_THR",
            "paper ARM_THR",
        ],
    )
    for name in PAPER_BENCHMARKS:
        entry = table.entry(name)
        kernel, paper_fpga, paper_arm = PAPER_TABLE2[name]
        result.rows.append(
            [
                name,
                entry.kernel_name,
                int(entry.fpga_threshold),
                int(entry.arm_threshold),
                paper_fpga,
                paper_arm,
            ]
        )
    return result


def table4_bfs(
    node_counts: Sequence[int] = (1000, 2000, 3000, 4000, 5000),
    run_functional: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    """Table 4: BFS execution time on x86 vs FPGA per graph size.

    Also runs the real BFS once per size (when ``run_functional``) to
    confirm the traversal itself is correct on the generated graphs.
    """
    result = ExperimentResult(
        name="Table 4: BFS execution time (ms)",
        headers=["nodes", "x86 (ms)", "FPGA (ms)", "paper x86", "paper FPGA", "traversal ok"],
    )
    for n_nodes in node_counts:
        profile = profile_for(f"bfs.{n_nodes}")
        verified = ""
        if run_functional:
            workload = create_workload(f"bfs.{n_nodes}")
            inp = workload.generate_input(seed)
            verified = workload.verify(inp, workload.run_kernel(inp))
        paper_x86, paper_fpga = PAPER_TABLE4_MS.get(n_nodes, ("-", "-"))
        result.rows.append(
            [
                n_nodes,
                profile.vanilla_x86_s * 1e3,
                profile.x86_fpga_s * 1e3,
                paper_x86,
                paper_fpga,
                verified,
            ]
        )
    result.notes = (
        "Paper: x86 faster by multiple orders of magnitude at every size; "
        "the Alveo U50 could not hold graphs beyond 5000 nodes, and step G "
        "therefore never finds a load that justifies migrating BFS."
    )
    return result
