"""Figures 3-5: average execution time of randomized application sets.

* Figure 3 (low load): sets of 1-5 applications, no background — fewer
  processes than x86 cores. Four systems including Vanilla Linux/ARM.
* Figure 4 (medium load): sets of 5-25 applications with MG-B
  background topping the process count up to 60 (more than the 6 x86
  cores, fewer than the 102 total cores).
* Figure 5 (high load): same sets, topped up to 120 processes (more
  than all cores).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core import SystemMode
from repro.experiments.harness import MODE_LABELS
from repro.experiments.report import ExperimentResult
from repro.experiments.sweep import cells_for_sets, run_cells

__all__ = ["figure3_low_load", "figure4_medium_load", "figure5_high_load", "fixed_workload_sweep"]

_LOW_MODES = (
    SystemMode.VANILLA_X86,
    SystemMode.VANILLA_ARM,
    SystemMode.ALWAYS_FPGA,
    SystemMode.XAR_TREK,
)
_LOADED_MODES = (
    SystemMode.VANILLA_X86,
    SystemMode.ALWAYS_FPGA,
    SystemMode.XAR_TREK,
)


def fixed_workload_sweep(
    name: str,
    set_sizes: Sequence[int],
    total_processes: int | None,
    modes: Sequence[SystemMode],
    repeats: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """The common engine behind Figures 3-5.

    ``total_processes`` is the target process count (set + MG-B
    background); ``None`` means no background (Figure 3). The whole
    grid (sizes x modes x repeats) is emitted as one cell list and
    fanned out over ``jobs`` workers; any ``jobs`` value produces
    byte-identical rows.
    """
    headers = ["set_size"]
    for mode in modes:
        headers += [f"{MODE_LABELS[mode]} (ms)", "std"]
    result = ExperimentResult(name=name, headers=headers)
    cells = []
    for size in set_sizes:
        background = 0
        if total_processes is not None:
            background = max(0, total_processes - size)
        cells.extend(
            cells_for_sets(
                size, modes, background=background, repeats=repeats, seed=seed
            )
        )
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    per_size = repeats * len(modes)
    for index, size in enumerate(set_sizes):
        block = sweep.results[index * per_size : (index + 1) * per_size]
        row: list = [size]
        for mode in modes:
            averages = [
                r.outcome.average_s for r in block if r.cell.mode is mode
            ]
            row += [
                float(np.mean(averages)) * 1e3,
                float(np.std(averages)) * 1e3,
            ]
        result.rows.append(row)
    return result


def figure3_low_load(repeats: int = 10, seed: int = 0, jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Figure 3: 1-5 applications, fewer processes than x86 cores."""
    result = fixed_workload_sweep(
        "Figure 3: average execution time, low load (< #x86 cores)",
        set_sizes=(1, 2, 3, 4, 5),
        total_processes=None,
        modes=_LOW_MODES,
        repeats=repeats,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    result.notes = (
        "Paper: Xar-Trek ~= Vanilla/x86 (it rarely migrates at low load); "
        "both beat always-FPGA by 50-75%; Vanilla/ARM always slowest."
    )
    return result


def figure4_medium_load(repeats: int = 10, seed: int = 0, jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Figure 4: 60 total processes (between #x86 and total cores)."""
    result = fixed_workload_sweep(
        "Figure 4: average execution time, medium load (60 processes)",
        set_sizes=(5, 10, 15, 20, 25),
        total_processes=60,
        modes=_LOADED_MODES,
        repeats=repeats,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    result.notes = "Paper: Xar-Trek gains 88%-1% over Vanilla/x86."
    return result


def figure5_high_load(repeats: int = 10, seed: int = 0, jobs: Optional[int] = None, cache=None) -> ExperimentResult:
    """Figure 5: 120 total processes (more than all 102 cores)."""
    result = fixed_workload_sweep(
        "Figure 5: average execution time, high load (120 processes)",
        set_sizes=(5, 10, 15, 20, 25),
        total_processes=120,
        modes=_LOADED_MODES,
        repeats=repeats,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    result.notes = "Paper: Xar-Trek gains 31%-19% over Vanilla/x86."
    return result


def gains_over(result: ExperimentResult, baseline_label: str, improved_label: str) -> list[float]:
    """Per-row percentage gains of one system over another."""
    base = result.column(f"{baseline_label} (ms)")
    better = result.column(f"{improved_label} (ms)")
    return [float((b - i) / b * 100.0) for b, i in zip(base, better)]
