"""Environment-sensitivity studies (beyond the paper's figures).

The paper measures one testbed. These sweeps vary the environment
assumptions our simulation makes explicit, quantifying how much each
one carries:

* :func:`arm_capacity_sensitivity` — Figure 5's high-load gains as the
  ARM server shrinks from 96 cores toward parity with the x86 host.
  With a small ARM cluster the migration escape valve saturates and
  Xar-Trek's gain collapses toward the paper's reported 19-31% — the
  leading explanation for our Figure 5 divergence (see EXPERIMENTS.md).
* :func:`reconfig_time_sensitivity` — Figure 6's Xar-Trek-vs-always-
  FPGA gap as XCLBIN programming time varies: the early-configuration
  design choice is worth exactly one reconfiguration per window.
* :func:`interconnect_sensitivity` — migration thresholds as Ethernet
  slows from 10 Gbps to 100 Mbps: the paper's workloads are compute-
  dominated, so thresholds barely move until the link gets very slow.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.compiler.threshold_estimation import x86_time_under_load
from repro.core import SystemMode, XarTrekRuntime, build_system
from repro.experiments.harness import sample_application_set
from repro.experiments.report import ExperimentResult, percent_gain
from repro.hardware import ALVEO_U50, THUNDERX, LinkSpec
from repro.hardware.platform import HeterogeneousPlatform
from repro.workloads import PAPER_BENCHMARKS, profile_for

__all__ = [
    "arm_capacity_sensitivity",
    "background_duty_sensitivity",
    "reconfig_time_sensitivity",
    "interconnect_sensitivity",
]


def background_duty_sensitivity(
    duties: Sequence[float] = (0.25, 0.5, 1.0),
    set_size: int = 15,
    total_processes: int = 120,
    repeats: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 5's gains vs how CPU-bound the background load is.

    With duty 1.0 (pure spinners) 120 resident processes dilate x86
    times the full 20x and Xar-Trek's escape to FPGA/ARM gains ~80%.
    Real MG-B is memory-bound: resident-but-stalled processes inflate
    the *process count* without consuming proportional CPU. Lower
    duties shrink the x86 baseline's penalty — and the gain — toward
    the paper's reported 19-31% band, making this the best candidate
    explanation for our Figure 5 magnitude divergence.
    """
    result = ExperimentResult(
        name="Sensitivity: high-load gain vs background duty cycle",
        headers=["duty", "Vanilla/x86 (ms)", "Xar-Trek (ms)", "gain (%)"],
    )
    for duty in duties:
        x86_times, xar_times = [], []
        rng = np.random.default_rng(seed)
        for repeat in range(repeats):
            apps = sample_application_set(rng, set_size)
            for mode, sink in (
                (SystemMode.VANILLA_X86, x86_times),
                (SystemMode.XAR_TREK, xar_times),
            ):
                runtime = build_system(sorted(set(apps)), seed=seed)
                load = runtime.launch_background(
                    max(0, total_processes - set_size), duty=duty
                )
                events = [
                    runtime.launch(app, seed=repeat * 100 + i, mode=mode, delay_s=0.05)
                    for i, app in enumerate(apps)
                ]
                records = runtime.wait_all(events)
                load.stop()
                sink.append(float(np.mean([r.elapsed_s for r in records])))
        x86_mean = float(np.mean(x86_times))
        xar_mean = float(np.mean(xar_times))
        result.rows.append(
            [duty, x86_mean * 1e3, xar_mean * 1e3, percent_gain(x86_mean, xar_mean)]
        )
    result.notes = (
        "Lower duty = memory-bound background: the x86 baseline's "
        "dilation shrinks and the gain with it — but only by a few "
        "points, because the measured applications themselves still "
        "saturate the 6 x86 cores. Together with the ARM-capacity sweep "
        "this bounds the model-side explanations for the Figure 5 "
        "magnitude divergence; the residual is attributed to effects the "
        "paper does not instrument (see EXPERIMENTS.md)."
    )
    return result


def _platform_with(arm_cores: int | None = None, reconfig_base_s: float | None = None):
    arm_spec = THUNDERX if arm_cores is None else replace(THUNDERX, cores=arm_cores)
    fpga_spec = ALVEO_U50
    if reconfig_base_s is not None:
        fpga_spec = replace(ALVEO_U50, reconfig_base_s=reconfig_base_s)
    return HeterogeneousPlatform(arm_spec=arm_spec, fpga_spec=fpga_spec)


def arm_capacity_sensitivity(
    arm_cores: Sequence[int] = (12, 24, 48, 96),
    set_size: int = 15,
    total_processes: int = 120,
    repeats: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 5's operating point as the ARM server shrinks."""
    result = ExperimentResult(
        name="Sensitivity: Xar-Trek high-load gain vs ARM core count",
        headers=["ARM cores", "Vanilla/x86 (ms)", "Xar-Trek (ms)", "gain (%)"],
    )
    for cores in arm_cores:
        x86_times, xar_times = [], []
        rng = np.random.default_rng(seed)
        for repeat in range(repeats):
            apps = sample_application_set(rng, set_size)
            for mode, sink in (
                (SystemMode.VANILLA_X86, x86_times),
                (SystemMode.XAR_TREK, xar_times),
            ):
                runtime = XarTrekRuntime(
                    build_system(sorted(set(apps))).result,
                    platform=_platform_with(arm_cores=cores),
                )
                load = runtime.launch_background(
                    max(0, total_processes - set_size)
                )
                events = [
                    runtime.launch(app, seed=repeat * 100 + i, mode=mode, delay_s=0.05)
                    for i, app in enumerate(apps)
                ]
                records = runtime.wait_all(events)
                load.stop()
                sink.append(float(np.mean([r.elapsed_s for r in records])))
        x86_mean = float(np.mean(x86_times))
        xar_mean = float(np.mean(xar_times))
        result.rows.append(
            [cores, x86_mean * 1e3, xar_mean * 1e3, percent_gain(x86_mean, xar_mean)]
        )
    result.notes = (
        "Finding: gains are nearly flat in ARM capacity — at this "
        "operating point the FPGA, not ARM, carries most migrated work, "
        "so a small ARM cluster barely hurts. (The duty-cycle study is "
        "the better explanation for the Figure 5 magnitude divergence.)"
    )
    return result


def reconfig_time_sensitivity(
    base_seconds: Sequence[float] = (0.5, 2.0, 8.0),
    background: int = 50,
    window_s: float = 60.0,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 6's Xar-Trek vs always-FPGA gap vs programming time."""
    result = ExperimentResult(
        name="Sensitivity: throughput-window winner vs reconfiguration time",
        headers=[
            "reconfig base (s)",
            "always-FPGA (img/s)",
            "Xar-Trek (img/s)",
            "Xar-Trek advantage (%)",
        ],
    )
    for base in base_seconds:
        throughputs = {}
        for mode in (SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK):
            runtime = XarTrekRuntime(
                build_system(["facedet.320"]).result,
                platform=_platform_with(reconfig_base_s=base),
            )
            load = runtime.launch_background(background)
            record = runtime.platform.sim.run_until_event(
                runtime.launch(
                    "facedet.320", seed=seed, mode=mode, calls=1000,
                    deadline_s=window_s, delay_s=0.01,
                )
            )
            load.stop()
            throughputs[mode] = record.calls_completed / window_s
        fpga = throughputs[SystemMode.ALWAYS_FPGA]
        xar = throughputs[SystemMode.XAR_TREK]
        result.rows.append(
            [base, fpga, xar, (xar - fpga) / fpga * 100.0 if fpga else 0.0]
        )
    result.notes = (
        "Hiding configuration behind CPU execution is worth one "
        "reconfiguration per window: the advantage grows with the "
        "programming time."
    )
    return result


def interconnect_sensitivity(
    ethernet_gbps: Sequence[float] = (0.1, 1.0, 10.0),
    cores: int = 6,
    max_load: int = 256,
) -> ExperimentResult:
    """ARM migration thresholds vs Ethernet bandwidth."""
    result = ExperimentResult(
        name="Sensitivity: ARM thresholds vs Ethernet bandwidth",
        headers=["benchmark"] + [f"ARM_THR @{g:g} Gbps" for g in ethernet_gbps],
    )
    for name in PAPER_BENCHMARKS:
        profile = profile_for(name)
        row: list = [name]
        for gbps in ethernet_gbps:
            spec = LinkSpec(
                "ethernet", bandwidth_bytes_per_s=gbps * 125e6, latency_s=100e-6
            )
            migrated_s = (
                profile.host_work_s
                + profile.per_call_host_s
                + profile.arm_call_s(ethernet=spec)
            )
            threshold = 0
            if migrated_s >= profile.vanilla_x86_s:
                threshold = max_load
                for load in range(1, max_load + 1):
                    if x86_time_under_load(profile, load, cores) > migrated_s:
                        threshold = load
                        break
            row.append(threshold)
        result.rows.append(row)
    result.notes = (
        "The paper's workloads are compute-dominated: thresholds are "
        "almost insensitive to link speed above 1 Gbps; only a 100 Mbps "
        "link visibly delays the profitability of migration."
    )
    return result
