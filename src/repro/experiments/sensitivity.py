"""Environment-sensitivity studies (beyond the paper's figures).

The paper measures one testbed. These sweeps vary the environment
assumptions our simulation makes explicit, quantifying how much each
one carries:

* :func:`arm_capacity_sensitivity` — Figure 5's high-load gains as the
  ARM server shrinks from 96 cores toward parity with the x86 host.
  With a small ARM cluster the migration escape valve saturates and
  Xar-Trek's gain collapses toward the paper's reported 19-31% — the
  leading explanation for our Figure 5 divergence (see EXPERIMENTS.md).
* :func:`reconfig_time_sensitivity` — Figure 6's Xar-Trek-vs-always-
  FPGA gap as XCLBIN programming time varies: the early-configuration
  design choice is worth exactly one reconfiguration per window.
* :func:`interconnect_sensitivity` — migration thresholds as Ethernet
  slows from 10 Gbps to 100 Mbps: the paper's workloads are compute-
  dominated, so thresholds barely move until the link gets very slow.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.compiler.threshold_estimation import x86_time_under_load
from repro.core import SystemMode
from repro.experiments.report import ExperimentResult, percent_gain
from repro.experiments.sweep import cells_for_sets, cells_for_throughput, run_cells
from repro.hardware import LinkSpec
from repro.workloads import PAPER_BENCHMARKS, profile_for

__all__ = [
    "arm_capacity_sensitivity",
    "background_duty_sensitivity",
    "reconfig_time_sensitivity",
    "interconnect_sensitivity",
]

_AB_MODES = (SystemMode.VANILLA_X86, SystemMode.XAR_TREK)


def _gain_rows(sweep_results, keys, repeats) -> list[list]:
    """Aggregate an (x86, xar)-paired cell block per key into gain rows."""
    rows = []
    per_key = repeats * len(_AB_MODES)
    for index, key in enumerate(keys):
        block = sweep_results[index * per_key : (index + 1) * per_key]
        means = {}
        for mode in _AB_MODES:
            times = [r.outcome.average_s for r in block if r.cell.mode is mode]
            means[mode] = float(np.mean(times))
        x86_mean = means[SystemMode.VANILLA_X86]
        xar_mean = means[SystemMode.XAR_TREK]
        rows.append(
            [key, x86_mean * 1e3, xar_mean * 1e3, percent_gain(x86_mean, xar_mean)]
        )
    return rows


def background_duty_sensitivity(
    duties: Sequence[float] = (0.25, 0.5, 1.0),
    set_size: int = 15,
    total_processes: int = 120,
    repeats: int = 5,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """Figure 5's gains vs how CPU-bound the background load is.

    With duty 1.0 (pure spinners) 120 resident processes dilate x86
    times the full 20x and Xar-Trek's escape to FPGA/ARM gains ~80%.
    Real MG-B is memory-bound: resident-but-stalled processes inflate
    the *process count* without consuming proportional CPU. Lower
    duties shrink the x86 baseline's penalty — and the gain — toward
    the paper's reported 19-31% band, making this the best candidate
    explanation for our Figure 5 magnitude divergence.
    """
    result = ExperimentResult(
        name="Sensitivity: high-load gain vs background duty cycle",
        headers=["duty", "Vanilla/x86 (ms)", "Xar-Trek (ms)", "gain (%)"],
    )
    background = max(0, total_processes - set_size)
    cells = [
        cell
        for duty in duties
        for cell in cells_for_sets(
            set_size, _AB_MODES, background=background, repeats=repeats,
            seed=seed, duty=duty,
        )
    ]
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    result.rows = _gain_rows(sweep.results, list(duties), repeats)
    result.notes = (
        "Lower duty = memory-bound background: the x86 baseline's "
        "dilation shrinks and the gain with it — but only by a few "
        "points, because the measured applications themselves still "
        "saturate the 6 x86 cores. Together with the ARM-capacity sweep "
        "this bounds the model-side explanations for the Figure 5 "
        "magnitude divergence; the residual is attributed to effects the "
        "paper does not instrument (see EXPERIMENTS.md)."
    )
    return result


def arm_capacity_sensitivity(
    arm_cores: Sequence[int] = (12, 24, 48, 96),
    set_size: int = 15,
    total_processes: int = 120,
    repeats: int = 5,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """Figure 5's operating point as the ARM server shrinks."""
    result = ExperimentResult(
        name="Sensitivity: Xar-Trek high-load gain vs ARM core count",
        headers=["ARM cores", "Vanilla/x86 (ms)", "Xar-Trek (ms)", "gain (%)"],
    )
    background = max(0, total_processes - set_size)
    cells = [
        replace(cell, arm_cores=cores)
        for cores in arm_cores
        for cell in cells_for_sets(
            set_size, _AB_MODES, background=background, repeats=repeats, seed=seed
        )
    ]
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    result.rows = _gain_rows(sweep.results, list(arm_cores), repeats)
    result.notes = (
        "Finding: gains are nearly flat in ARM capacity — at this "
        "operating point the FPGA, not ARM, carries most migrated work, "
        "so a small ARM cluster barely hurts. (The duty-cycle study is "
        "the better explanation for the Figure 5 magnitude divergence.)"
    )
    return result


def reconfig_time_sensitivity(
    base_seconds: Sequence[float] = (0.5, 2.0, 8.0),
    background: int = 50,
    window_s: float = 60.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """Figure 6's Xar-Trek vs always-FPGA gap vs programming time."""
    result = ExperimentResult(
        name="Sensitivity: throughput-window winner vs reconfiguration time",
        headers=[
            "reconfig base (s)",
            "always-FPGA (img/s)",
            "Xar-Trek (img/s)",
            "Xar-Trek advantage (%)",
        ],
    )
    modes = (SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)
    cells = [
        cell
        for base in base_seconds
        for cell in cells_for_throughput(
            "facedet.320", modes, (background,), n_images=1000,
            window_s=window_s, seed=seed, delay_s=0.01, reconfig_base_s=base,
        )
    ]
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    for index, base in enumerate(base_seconds):
        fpga, xar = (float(r.value) for r in sweep.results[index * 2 : index * 2 + 2])
        result.rows.append(
            [base, fpga, xar, (xar - fpga) / fpga * 100.0 if fpga else 0.0]
        )
    result.notes = (
        "Hiding configuration behind CPU execution is worth one "
        "reconfiguration per window: the advantage grows with the "
        "programming time."
    )
    return result


def interconnect_sensitivity(
    ethernet_gbps: Sequence[float] = (0.1, 1.0, 10.0),
    cores: int = 6,
    max_load: int = 256,
) -> ExperimentResult:
    """ARM migration thresholds vs Ethernet bandwidth."""
    result = ExperimentResult(
        name="Sensitivity: ARM thresholds vs Ethernet bandwidth",
        headers=["benchmark"] + [f"ARM_THR @{g:g} Gbps" for g in ethernet_gbps],
    )
    for name in PAPER_BENCHMARKS:
        profile = profile_for(name)
        row: list = [name]
        for gbps in ethernet_gbps:
            spec = LinkSpec(
                "ethernet", bandwidth_bytes_per_s=gbps * 125e6, latency_s=100e-6
            )
            migrated_s = (
                profile.host_work_s
                + profile.per_call_host_s
                + profile.arm_call_s(ethernet=spec)
            )
            threshold = 0
            if migrated_s >= profile.vanilla_x86_s:
                threshold = max_load
                for load in range(1, max_load + 1):
                    if x86_time_under_load(profile, load, cores) > migrated_s:
                        threshold = load
                        break
            row.append(threshold)
        result.rows.append(row)
    result.notes = (
        "The paper's workloads are compute-dominated: thresholds are "
        "almost insensitive to link speed above 1 Gbps; only a 100 Mbps "
        "link visibly delays the profitability of migration."
    )
    return result
