"""Figure 9 (and Table 4): when is Xar-Trek profitable?

Section 4.4: not every application benefits from the FPGA.
Pointer-chasing workloads (BFS, Table 4) are orders of magnitude slower
in hardware; CG-A is the paper's in-pool example. Figure 9 fixes the
load at 120 processes, and sweeps a ten-application set from 100%
compute-intensive (digit.2000, fast on the FPGA) to 100%
non-compute-intensive (CG-A), comparing Xar-Trek's average execution
time against Vanilla/x86.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import SystemMode
from repro.experiments.harness import run_application_set
from repro.experiments.report import ExperimentResult, percent_gain

__all__ = ["figure9_profitability", "profitability_point"]

_COMPUTE_APP = "digit.2000"  # fastest on the FPGA (Table 1)
_NONCOMPUTE_APP = "cg.A"  # slowest on the FPGA (Table 1)


def profitability_point(
    percent_noncompute: int,
    set_size: int = 10,
    total_processes: int = 120,
    seed: int = 0,
) -> tuple[float, float]:
    """(Vanilla/x86, Xar-Trek) average times for one CG-A percentage."""
    if not 0 <= percent_noncompute <= 100:
        raise ValueError("percentage must be within 0..100")
    n_noncompute = round(set_size * percent_noncompute / 100)
    apps = [_NONCOMPUTE_APP] * n_noncompute + [_COMPUTE_APP] * (
        set_size - n_noncompute
    )
    background = max(0, total_processes - set_size)
    x86 = run_application_set(
        apps, SystemMode.VANILLA_X86, background=background, seed=seed
    )
    xar = run_application_set(
        apps, SystemMode.XAR_TREK, background=background, seed=seed
    )
    return x86.average_s, xar.average_s


def figure9_profitability(
    percentages: Sequence[int] = (0, 20, 30, 50, 70, 80, 100),
    set_size: int = 10,
    total_processes: int = 120,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 9's seven workload mixes."""
    result = ExperimentResult(
        name="Figure 9: profitability vs % of non-compute-intensive apps",
        headers=[
            "% CG-A",
            "Vanilla Linux/x86 (ms)",
            "Xar-Trek (ms)",
            "gain (%)",
        ],
    )
    for pct in percentages:
        x86_s, xar_s = profitability_point(
            pct, set_size=set_size, total_processes=total_processes, seed=seed
        )
        result.rows.append(
            [pct, x86_s * 1e3, xar_s * 1e3, percent_gain(x86_s, xar_s)]
        )
    result.notes = (
        "Paper: Xar-Trek beats Vanilla/x86 (gains 26%-32%) at every mix "
        "except 100% CG-A; profitable as long as compute-intensive "
        "applications dominate."
    )
    return result
