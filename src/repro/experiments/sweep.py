"""Parallel sweep executor: declarative cells, deterministic fan-out.

The paper's evaluation is not one simulation but dozens to hundreds of
*independent* ``(application set, mode, background, repeat)`` runs —
Figures 3-6, Tables 1-4, the sensitivity studies, and ``repro report``
all iterate the same primitive through nested loops. This module
decouples *what cells to run* from *where and when they execute*:

* :class:`Cell` — a frozen, picklable spec naming everything one run
  needs (workload set, system mode, background size, derived seed,
  platform overrides). Emitters (:func:`cells_for_sets`,
  ``fixed_workload_sweep``, ``figure6_throughput``, the sensitivity
  sweeps) build cell lists up front; nothing about a cell depends on
  when or where it runs.
* :func:`run_cells` — the executor. Serial (``jobs=1``) and parallel
  (``jobs=N`` over a :class:`~concurrent.futures.ProcessPoolExecutor`)
  execution produce byte-identical results, because every cell carries
  its own seed — derived via :meth:`numpy.random.SeedSequence.spawn`
  at emission time — and builds a fresh simulator. Dispatch is chunked
  to amortize worker startup.
* :class:`SweepCache` — an optional content-addressed on-disk result
  cache keyed by (cell spec, repro version, platform config hash), so
  re-running a report only simulates changed cells.

Sweep-level metrics (cells run, cache hits, worker utilization) are
recorded through :mod:`repro.metrics` — see :func:`sweep_metrics`.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

import numpy as np

from repro import __version__
from repro.core import SystemMode, build_system
from repro.experiments.harness import (
    SetOutcome,
    run_application_set,
    sample_application_set,
)
from repro.hardware import ALVEO_U50, THUNDERX
from repro.hardware.interconnect import ETHERNET_1GBPS, PCIE_GEN3_X16
from repro.hardware.platform import HeterogeneousPlatform, XEON_BRONZE_3104
from repro.metrics import MetricsRegistry
from repro.workloads import PAPER_BENCHMARKS

__all__ = [
    "Cell",
    "CellResult",
    "SweepCache",
    "SweepOutcome",
    "SweepStats",
    "cells_for_sets",
    "cells_for_throughput",
    "derive_seeds",
    "parallel_threshold",
    "platform_config_hash",
    "resolve_jobs",
    "results_checksum",
    "run_cell",
    "run_cells",
    "shutdown_pool",
    "sweep_metrics",
    "warm_pool",
]

#: Environment variable read by :func:`resolve_jobs` when no explicit
#: ``jobs`` is given (CI sets it to exercise the pool path).
JOBS_ENV = "REPRO_SWEEP_JOBS"

#: Environment variable overriding :func:`parallel_threshold` — the
#: minimum number of to-be-executed cells before a multi-job sweep
#: actually spins up the process pool. ``0`` disables the serial
#: fallback entirely (CI sets it to force the pool path on tiny
#: sweeps so the serial/parallel equivalence contract stays covered).
MIN_CELLS_ENV = "REPRO_SWEEP_MIN_CELLS"

#: Default pool-worthiness threshold, in pending cells per worker.
#: Spawning workers and pickling cells costs real wall time; a cell
#: simulates in the low tens of milliseconds, so a worker needs a
#: batch of them before the pool amortizes (the committed bench once
#: recorded parallel_speedup 0.66 — a slowdown — on a 27-cell grid).
_MIN_CELLS_PER_WORKER = 16


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------

def derive_seeds(root: int | np.random.SeedSequence, n: int) -> list[int]:
    """``n`` collision-free child seeds from one root.

    Children come from :meth:`~numpy.random.SeedSequence.spawn`, so —
    unlike the old ``seed * 100 + repeat`` arithmetic, which collides
    across base seeds once ``repeats >= 100`` — distinct (root, index)
    pairs map to statistically independent streams. Each child is
    flattened to a 64-bit int so it can ride in a :class:`Cell` and
    re-seed any downstream ``SeedSequence`` or generator.
    """
    if not isinstance(root, np.random.SeedSequence):
        root = np.random.SeedSequence(root)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0]) for child in root.spawn(n)
    ]


# ---------------------------------------------------------------------------
# Cell specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One independent unit of evaluation work.

    ``kind`` selects the primitive:

    * ``"set"`` — one application set launched concurrently
      (:func:`~repro.experiments.harness.run_application_set`);
    * ``"throughput"`` — one Figure-6-style windowed run reporting
      calls per second;
    * ``"scenario"`` — one Table-1 single-benchmark scenario
      (``x86`` / ``fpga`` / ``arm``).

    Optional platform overrides (``arm_cores``, ``reconfig_base_s``)
    let the sensitivity sweeps express their modified testbeds as
    cells too. The spec is frozen and fully picklable: a cell is the
    complete recipe for its run, independent of execution order.
    """

    kind: str
    apps: tuple[str, ...]
    mode: SystemMode
    seed: int
    background: int = 0
    duty: float = 1.0
    calls: Optional[int] = None
    window_s: Optional[float] = None
    delay_s: float = 0.0
    scenario: Optional[str] = None
    arm_cores: Optional[int] = None
    reconfig_base_s: Optional[float] = None

    def spec_dict(self) -> dict:
        """Canonical JSON-safe description (the cache-key payload)."""
        spec = asdict(self)
        spec["mode"] = self.mode.value
        spec["apps"] = list(self.apps)
        return spec


@dataclass
class CellResult:
    """What one executed cell produced.

    ``outcome`` is populated for ``set`` cells; ``value`` holds the
    scalar result of ``throughput`` (images/s) and ``scenario``
    (elapsed seconds) cells. ``events`` / ``sim_seconds`` expose the
    simulator counters so benches can aggregate across workers;
    ``wall_s`` is this cell's own execution time (worker-side), which
    is *not* part of the deterministic payload.
    """

    cell: Cell
    outcome: Optional[SetOutcome] = None
    value: Optional[float] = None
    events: int = 0
    sim_seconds: float = 0.0
    wall_s: float = 0.0
    cached: bool = False


def _platform_for(cell: Cell) -> Optional[HeterogeneousPlatform]:
    """The overridden testbed a cell asks for, or ``None`` for default."""
    if cell.arm_cores is None and cell.reconfig_base_s is None:
        return None
    arm_spec = THUNDERX
    if cell.arm_cores is not None:
        arm_spec = replace(THUNDERX, cores=cell.arm_cores)
    fpga_spec = ALVEO_U50
    if cell.reconfig_base_s is not None:
        fpga_spec = replace(ALVEO_U50, reconfig_base_s=cell.reconfig_base_s)
    return HeterogeneousPlatform(arm_spec=arm_spec, fpga_spec=fpga_spec, seed=cell.seed)


def run_cell(cell: Cell) -> CellResult:
    """Execute one cell on a fresh deployment (safe in any process)."""
    started = time.perf_counter()
    runtime = build_system(
        sorted(set(cell.apps)), seed=cell.seed, platform=_platform_for(cell)
    )
    result = CellResult(cell=cell)
    if cell.kind == "set":
        result.outcome = run_application_set(
            cell.apps,
            cell.mode,
            background=cell.background,
            seed=cell.seed,
            runtime=runtime,
            duty=cell.duty,
        )
    elif cell.kind == "throughput":
        (app,) = cell.apps
        load = (
            runtime.launch_background(cell.background, duty=cell.duty)
            if cell.background
            else None
        )
        record = runtime.platform.sim.run_until_event(
            runtime.launch(
                app, seed=cell.seed, mode=cell.mode, calls=cell.calls,
                deadline_s=cell.window_s, delay_s=cell.delay_s,
            )
        )
        if load is not None:
            load.stop()
        result.value = record.calls_completed / (cell.window_s or 1.0)
    elif cell.kind == "scenario":
        # Table 1's single-benchmark scenarios; imported lazily because
        # tables.py itself emits scenario cells through this module.
        from repro.experiments.tables import run_scenario_on

        (app,) = cell.apps
        result.value = run_scenario_on(runtime, app, cell.scenario or "x86", cell.seed)
    else:
        raise ValueError(f"unknown cell kind {cell.kind!r}")
    sim = runtime.platform.sim
    result.events = sim.events_processed
    result.sim_seconds = sim.now
    result.wall_s = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# Emitters
# ---------------------------------------------------------------------------

def cells_for_sets(
    set_size: int,
    modes: Sequence[SystemMode] | SystemMode,
    background: int = 0,
    repeats: int = 10,
    seed: int = 0,
    pool: Sequence[str] = PAPER_BENCHMARKS,
    duty: float = 1.0,
) -> list[Cell]:
    """The Figure-3/4/5 primitive as a cell list.

    For each repeat one application set is sampled and one child seed
    spawned; all ``modes`` share them, so cross-mode comparisons stay
    paired exactly as in the serial harness. Cells come out grouped by
    repeat, then mode.
    """
    if isinstance(modes, SystemMode):
        modes = (modes,)
    root = np.random.SeedSequence(seed)
    sample_seq, run_seq = root.spawn(2)
    rng = np.random.default_rng(sample_seq)
    repeat_seeds = derive_seeds(run_seq, repeats)
    cells = []
    for repeat in range(repeats):
        apps = sample_application_set(rng, set_size, pool)
        for mode in modes:
            cells.append(
                Cell(
                    kind="set",
                    apps=apps,
                    mode=mode,
                    seed=repeat_seeds[repeat],
                    background=background,
                    duty=duty,
                )
            )
    return cells


def cells_for_throughput(
    app: str,
    modes: Sequence[SystemMode],
    background_loads: Sequence[int],
    n_images: int = 1000,
    window_s: float = 60.0,
    seed: int = 0,
    delay_s: float = 0.0,
    reconfig_base_s: Optional[float] = None,
) -> list[Cell]:
    """Figure-6-style windowed-throughput cells.

    One child seed per background load, shared across modes (paired
    comparisons, as in the serial loop).
    """
    bg_seeds = derive_seeds(seed, len(background_loads))
    return [
        Cell(
            kind="throughput",
            apps=(app,),
            mode=mode,
            seed=bg_seeds[i],
            background=background,
            calls=n_images,
            window_s=window_s,
            delay_s=delay_s,
            reconfig_base_s=reconfig_base_s,
        )
        for i, background in enumerate(background_loads)
        for mode in modes
    ]


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

def platform_config_hash() -> str:
    """Fingerprint of the default testbed's hardware constants.

    Any change to the calibrated specs (CPU cores/frequency, FPGA
    reconfiguration time, link bandwidths) invalidates every cached
    cell, because the same cell spec would simulate differently.
    """
    specs = {
        "x86": asdict(XEON_BRONZE_3104),
        "arm": asdict(THUNDERX),
        "fpga": asdict(ALVEO_U50),
        "ethernet": asdict(ETHERNET_1GBPS),
        "pcie": asdict(PCIE_GEN3_X16),
    }
    payload = json.dumps(specs, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class SweepCache:
    """Content-addressed on-disk cache of :class:`CellResult` payloads.

    Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the sha256
    of the canonical cell spec plus a *fingerprint* covering the repro
    version and the platform config hash. A version bump or a testbed
    recalibration therefore misses cleanly; unreadable entries are
    treated as misses and rewritten.
    """

    def __init__(self, root: str | os.PathLike, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or self.default_fingerprint()

    @staticmethod
    def default_fingerprint() -> str:
        return f"{__version__}/{platform_config_hash()}"

    def key_for(self, cell: Cell) -> str:
        payload = json.dumps(
            {"cell": cell.spec_dict(), "fingerprint": self.fingerprint},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, cell: Cell) -> Optional[CellResult]:
        path = self._path(self.key_for(cell))
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(result, CellResult):
            return None
        result.cached = True
        return result

    def store(self, result: CellResult) -> None:
        path = self._path(self.key_for(result.cell))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)


def _as_cache(cache) -> Optional[SweepCache]:
    if cache is None or isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------

def resolve_jobs(jobs: Optional[int | str] = None, env: str = JOBS_ENV) -> int:
    """Normalize a ``--jobs`` value: ``None`` falls back to the ``env``
    variable (``REPRO_SWEEP_JOBS`` by default, value 1); 0 or ``"auto"``
    means all CPUs. Other tiers that share the worker pool pass their
    own env name (the fleet executor reads ``REPRO_FLEET_JOBS``)."""
    if jobs is None:
        jobs = os.environ.get(env, "1")
    if isinstance(jobs, str):
        jobs = 0 if jobs.strip().lower() == "auto" else int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def parallel_threshold(workers: int) -> int:
    """Minimum pending-cell count for the pool to be worth starting.

    Defaults to ``16 * workers``; the ``REPRO_SWEEP_MIN_CELLS`` env var
    overrides it outright (``0`` disables the serial fallback).
    """
    raw = os.environ.get(MIN_CELLS_ENV)
    if raw is not None:
        return max(0, int(raw))
    return _MIN_CELLS_PER_WORKER * max(1, workers)


@dataclass
class SweepStats:
    """Executor accounting for one :func:`run_cells` call.

    ``jobs`` is the *requested* worker count (after
    :func:`resolve_jobs`); ``workers`` is how many actually ran, and
    ``mode`` records whether the process pool was used — a multi-job
    sweep falls back to ``"serial"`` when the pending-cell count is
    below :func:`parallel_threshold`, where pool startup would cost
    more than it buys.
    """

    cells_total: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    workers: int = 1
    mode: str = "serial"
    wall_s: float = 0.0
    busy_s: float = 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker-seconds budget spent simulating."""
        if self.wall_s <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.workers * self.wall_s))


@dataclass
class SweepOutcome:
    """Results (in emission order) plus executor accounting."""

    results: list[CellResult] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)


_SWEEP_METRICS: Optional[MetricsRegistry] = None


def sweep_metrics() -> MetricsRegistry:
    """The process-wide sweep metrics registry (wall-clock driven).

    Families: ``sweep_cells_total{kind}``, ``sweep_cache_hits_total``,
    ``sweep_cache_misses_total``, ``sweep_cells_executed_total``,
    ``sweep_runs_total{mode}``, ``sweep_cell_wall_seconds``
    (histogram), and the gauges ``sweep_worker_utilization`` /
    ``sweep_jobs``.
    """
    global _SWEEP_METRICS
    if _SWEEP_METRICS is None:
        _SWEEP_METRICS = MetricsRegistry(clock=time.monotonic)
    return _SWEEP_METRICS


def _record_stats(registry: MetricsRegistry, stats: SweepStats, results) -> None:
    cells = registry.counter(
        "sweep_cells_total", "cells submitted to the sweep executor", ("kind",)
    )
    for result in results:
        cells.labels(kind=result.cell.kind).inc()
    registry.counter(
        "sweep_cache_hits_total", "cells served from the on-disk cache"
    ).inc(stats.cache_hits)
    registry.counter(
        "sweep_cache_misses_total", "cells that had to simulate despite a cache"
    ).inc(stats.cache_misses)
    registry.counter(
        "sweep_cells_executed_total", "cells actually simulated"
    ).inc(stats.executed)
    wall = registry.histogram(
        "sweep_cell_wall_seconds", "per-cell worker-side execution time"
    )
    for result in results:
        if not result.cached:
            wall.observe(result.wall_s)
    registry.counter(
        "sweep_runs_total", "run_cells invocations by execution mode", ("mode",)
    ).labels(mode=stats.mode).inc()
    registry.gauge(
        "sweep_worker_utilization", "busy worker-seconds / (workers * wall)"
    ).set(stats.worker_utilization)
    registry.gauge("sweep_jobs", "worker count of the last sweep").set(stats.jobs)


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------
#
# Spinning up a ProcessPoolExecutor per run_cells call made the bench's
# 27-cell parallel leg *slower* than serial (parallel_speedup 0.92):
# worker spawn plus a cold per-worker compile cache cost more than the
# grid. The pool is therefore process-global and reused across calls —
# workers keep their warm ``repro.core.runtime._COMPILE_CACHE`` — and
# :func:`warm_pool` pre-spawns workers and prebuilds the default
# runtime in each before a timed section.

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _pool_for(workers: int) -> ProcessPoolExecutor:
    """The shared pool, grown (never shrunk) to ``workers`` workers."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS < workers:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared worker pool (also runs at interpreter exit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _warm_worker(_index: int) -> bool:
    """Worker-side warmup: prebuild the default-benchmark runtime.

    Populates the worker's compile cache (a no-op under the fork start
    method, which inherits the parent's, but load-bearing under spawn).
    """
    build_system(PAPER_BENCHMARKS, seed=0)
    return True


def warm_pool(jobs: Optional[int | str] = None) -> int:
    """Pre-spawn the shared pool and warm every worker's caches.

    Returns the worker count (0 when ``jobs`` resolves to serial).
    Call before a timed parallel section so worker startup and compile
    time do not bill to it; tasks are dispatched with chunksize 1 so
    the warmup fans out across the pool.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return 0
    pool = _pool_for(jobs)
    list(pool.map(_warm_worker, range(_POOL_WORKERS), chunksize=1))
    return _POOL_WORKERS


def run_cells(
    cells: Iterable[Cell],
    jobs: Optional[int | str] = None,
    cache: Optional[SweepCache | str | os.PathLike] = None,
    chunksize: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    min_cells: Optional[int] = None,
) -> SweepOutcome:
    """Execute cells, possibly in parallel, preserving emission order.

    Serial and parallel runs are byte-identical: each cell is
    self-seeded, runs on a fresh simulator, and results are collected
    back into cell order regardless of completion order. With a
    ``cache``, previously simulated cells are loaded instead of re-run
    and fresh results are stored after execution.

    ``chunksize`` controls how many cells each pool task carries
    (default: enough for ~4 chunks per worker) to amortize worker
    startup and per-task pickling.

    A multi-job call still runs serially when fewer than
    :func:`parallel_threshold` cells actually need simulating — pool
    startup costs hundreds of milliseconds, which on a small grid of
    tens-of-milliseconds cells is a net slowdown, not a speedup. The
    chosen path lands in ``SweepOutcome.stats.mode`` and the
    ``sweep_runs_total{mode}`` counter; ``REPRO_SWEEP_MIN_CELLS=0``
    disables the fallback. ``min_cells`` overrides the threshold for
    this call alone — a caller that already ran :func:`warm_pool` has
    paid the startup cost the threshold guards against, so it should
    pass a small value (the bench's 27-cell grid otherwise never
    reaches the default ``16 * workers`` bar and silently runs serial).

    The worker pool persists across calls (workers keep their warm
    compile caches); :func:`warm_pool` pre-spawns it ahead of a timed
    section and :func:`shutdown_pool` tears it down.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    cache = _as_cache(cache)
    started = time.perf_counter()
    results: list[Optional[CellResult]] = [None] * len(cells)
    pending: list[int] = []
    hits = 0
    for index, cell in enumerate(cells):
        loaded = cache.load(cell) if cache is not None else None
        if loaded is not None:
            results[index] = loaded
            hits += 1
        else:
            pending.append(index)
    workers = 1
    mode = "serial"
    threshold = (
        min_cells
        if min_cells is not None
        else parallel_threshold(min(jobs, len(pending)))
    )
    use_pool = jobs > 1 and len(pending) > 1 and len(pending) >= threshold
    if use_pool:
        workers = min(jobs, len(pending))
        mode = "parallel"
        chunk = chunksize or max(1, math.ceil(len(pending) / (workers * 4)))
        pool = _pool_for(workers)
        try:
            fresh = pool.map(
                run_cell, [cells[i] for i in pending], chunksize=chunk
            )
            for index, result in zip(pending, fresh):
                results[index] = result
        except BrokenProcessPool:
            # A worker died (OOM kill, signal). Results are
            # deterministic either way, so recover by finishing the
            # grid serially rather than failing the whole sweep.
            shutdown_pool()
            mode = "serial"
            workers = 1
            for index in pending:
                if results[index] is None:
                    results[index] = run_cell(cells[index])
    else:
        for index in pending:
            results[index] = run_cell(cells[index])
    if cache is not None:
        for index in pending:
            cache.store(results[index])
    stats = SweepStats(
        cells_total=len(cells),
        executed=len(pending),
        cache_hits=hits,
        cache_misses=len(pending) if cache is not None else 0,
        jobs=jobs,
        workers=workers,
        mode=mode,
        wall_s=time.perf_counter() - started,
        busy_s=float(sum(results[i].wall_s for i in pending)),
    )
    final: list[CellResult] = [r for r in results if r is not None]
    # Explicit None check: an empty MetricsRegistry is falsy (__len__).
    _record_stats(sweep_metrics() if metrics is None else metrics, stats, final)
    return SweepOutcome(results=final, stats=stats)


# ---------------------------------------------------------------------------
# Checksums (the serial-vs-parallel equivalence guard)
# ---------------------------------------------------------------------------

def results_checksum(results: Sequence[CellResult]) -> str:
    """Fold every deterministic output of a sweep into one digest.

    Covers run records (timings, targets, migrations), scalar values,
    and the full metrics snapshot of every set cell — but not wall
    times or cache state, which legitimately differ between runs.
    """
    digest = hashlib.sha256()
    for result in results:
        digest.update(json.dumps(result.cell.spec_dict(), sort_keys=True).encode())
        if result.value is not None:
            digest.update(f"{result.value:.12e}".encode())
        if result.outcome is not None:
            for rec in result.outcome.records:
                line = (
                    f"{rec.app},{rec.start_s:.9f},{rec.end_s:.9f},"
                    f"{rec.calls_completed},{rec.migrations},"
                    f"{','.join(str(t) for t in rec.targets)}"
                )
                digest.update(line.encode())
            digest.update(
                json.dumps(result.outcome.metrics, sort_keys=True).encode()
            )
        digest.update(b"\x00")
    return digest.hexdigest()[:16]
