"""Timeline extraction and export: what did the system do, and when.

Builds a per-run timeline from a (trace-enabled) runtime: application
spans, scheduler decisions with their Algorithm 2 rules, and FPGA
reconfigurations. Exports CSV and JSON for offline analysis and offers
a load histogram for quick textual inspection — the practical debugging
surface a policy author needs.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass
from typing import Optional

from repro.core.runtime import XarTrekRuntime

__all__ = ["TimelineEvent", "Timeline", "extract_timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One timeline entry."""

    time_s: float
    kind: str  # app-start | app-end | decision | reconfig | dsm | fpga
    app: str
    detail: str


@dataclass
class Timeline:
    """An ordered event list with exporters."""

    events: list[TimelineEvent]

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TimelineEvent]:
        return [ev for ev in self.events if ev.kind == kind]

    def between(self, start_s: float, end_s: float) -> "Timeline":
        return Timeline(
            [ev for ev in self.events if start_s <= ev.time_s <= end_s]
        )

    # -- exporters -----------------------------------------------------------
    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["time_s", "kind", "app", "detail"])
        for ev in self.events:
            writer.writerow([f"{ev.time_s:.9f}", ev.kind, ev.app, ev.detail])
        return out.getvalue()

    def to_json(self) -> str:
        return json.dumps([asdict(ev) for ev in self.events], indent=2)

    def decision_counts(self) -> dict[str, int]:
        """Algorithm 2 rule -> how often it fired."""
        counts: dict[str, int] = {}
        for ev in self.of_kind("decision"):
            rule = ev.detail.split("rule=", 1)[-1]
            counts[rule] = counts.get(rule, 0) + 1
        return counts

    def summary(self) -> str:
        spans = self.of_kind("app-end")
        lines = [
            f"{len(self.events)} events, {len(self.of_kind('app-start'))} app "
            f"starts, {len(spans)} completions, "
            f"{len(self.of_kind('reconfig'))} reconfigurations"
        ]
        counts = self.decision_counts()
        if counts:
            lines.append(
                "decisions: "
                + ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
            )
        return "\n".join(lines)


def extract_timeline(
    runtime: XarTrekRuntime, until: Optional[float] = None
) -> Timeline:
    """Build the timeline from a runtime's records and trace.

    Scheduler decisions and reconfigurations require the platform to
    have been built with ``trace=True``; application spans come from
    the run records and are always available.
    """
    events: list[TimelineEvent] = []
    for record in runtime.records:
        events.append(
            TimelineEvent(record.start_s, "app-start", record.app, f"seed={record.seed}")
        )
        if record.finished:
            targets = "+".join(str(t) for t in record.targets) or "-"
            events.append(
                TimelineEvent(
                    record.end_s,
                    "app-end",
                    record.app,
                    f"elapsed={record.elapsed_s:.6f} targets={targets}",
                )
            )
    for trace_record in runtime.platform.tracer.records:
        if trace_record.category == "scheduler":
            if "rule" in trace_record.data:
                events.append(
                    TimelineEvent(
                        trace_record.time,
                        "decision",
                        str(trace_record.data.get("app", "")),
                        f"load={trace_record.data.get('load')} "
                        f"target={trace_record.data.get('target')} "
                        f"rule={trace_record.data.get('rule')}",
                    )
                )
            elif "image" in trace_record.data:
                events.append(
                    TimelineEvent(
                        trace_record.time,
                        "reconfig",
                        str(trace_record.data.get("kernel", "")),
                        f"image={trace_record.data.get('image')}",
                    )
                )
    events.sort(key=lambda ev: (ev.time_s, ev.kind))
    if until is not None:
        events = [ev for ev in events if ev.time_s <= until]
    return Timeline(events)
