"""Rendering experiment results as the paper's tables/series.

Every experiment returns an :class:`ExperimentResult`: named columns,
rows, and free-form notes. ``to_text`` renders an aligned text table so
benchmark runs print the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentResult", "format_table", "metrics_section", "percent_gain"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align columns; floats get 2 decimals, everything else ``str``."""

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    table = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def percent_gain(baseline: float, improved: float) -> float:
    """The paper's gain metric: how much faster ``improved`` is, in %.

    For execution times (lower better): ``(baseline - improved) /
    baseline * 100``. Negative means a slowdown.
    """
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0


@dataclass
class ExperimentResult:
    """One table or figure's regenerated data."""

    name: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        out = [f"== {self.name} =="]
        out.append(format_table(self.headers, self.rows))
        if self.notes:
            out.append("")
            out.append(self.notes)
        return "\n".join(out)

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(
                f"{self.name} has columns {self.headers}, not {header!r}"
            ) from None
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> list[Any]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"{self.name} has no row {key!r}")


def metrics_section(snapshot: dict, name: str = "Metrics") -> ExperimentResult:
    """Render a metrics snapshot as one aligned table.

    Histogram rows get count + p50/p95/p99 (milliseconds for metrics
    named ``*_seconds``); counters and gauges get their value. Rows come
    out in snapshot order, which is sorted, so the rendering is as
    deterministic as the snapshot itself.
    """
    result = ExperimentResult(
        name=name,
        headers=["metric", "labels", "kind", "count/value", "p50", "p95", "p99"],
    )
    for family in snapshot.get("metrics", []):
        in_ms = family["name"].endswith("_seconds")
        unit = " ms" if in_ms else ""
        scale = 1e3 if in_ms else 1.0

        for series in family["series"]:
            labels = ",".join(
                f"{k}={series['labels'][k]}" for k in sorted(series["labels"])
            ) or "-"
            if family["type"] == "histogram":
                pct = series["percentiles"]
                result.rows.append([
                    family["name"], labels, "histogram", series["count"],
                    f"{pct['p50'] * scale:.3f}{unit}",
                    f"{pct['p95'] * scale:.3f}{unit}",
                    f"{pct['p99'] * scale:.3f}{unit}",
                ])
            elif family["type"] == "gauge":
                result.rows.append([
                    family["name"], labels, "gauge",
                    f"{series['value']:g} (mean {series['time_weighted_mean']:.2f})",
                    "-", "-", "-",
                ])
            else:
                result.rows.append([
                    family["name"], labels, "counter",
                    f"{series['value']:g}", "-", "-", "-",
                ])
    return result
