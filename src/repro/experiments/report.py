"""Rendering experiment results as the paper's tables/series.

Every experiment returns an :class:`ExperimentResult`: named columns,
rows, and free-form notes. ``to_text`` renders an aligned text table so
benchmark runs print the same rows/series the paper reports.

:func:`generate_report` regenerates *every* table and figure (the
``repro report`` command): the simulation-driven ones emit sweep cells
and consume executor results (see :mod:`repro.experiments.sweep`), so
the whole report fans out over ``jobs`` workers and can reuse an
on-disk result cache between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "REPORT_FIGURES",
    "REPORT_TABLES",
    "format_table",
    "generate_report",
    "metrics_section",
    "percent_gain",
    "sweep_stats_section",
]

#: The paper's tables/figures by number -> experiment function name.
REPORT_TABLES = {1: "table1_execution_times", 2: "table2_thresholds",
                 3: "table3_load_classes", 4: "table4_bfs"}
REPORT_FIGURES = {3: "figure3_low_load", 4: "figure4_medium_load",
                  5: "figure5_high_load", 6: "figure6_throughput",
                  7: "figure7_periodic_execution", 8: "figure8_periodic_throughput",
                  9: "figure9_profitability", 10: "figure10_binary_sizes"}

#: Numbers whose functions take (repeats, seed, jobs, cache).
_SWEEP_FIGURES = (3, 4, 5)
#: Numbers whose functions take (seed, jobs, cache) / (seed,) only.
_SEEDED_FIGURES = (6, 7, 8, 9)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align columns; floats get 2 decimals, everything else ``str``."""

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    table = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def percent_gain(baseline: float, improved: float) -> float:
    """The paper's gain metric: how much faster ``improved`` is, in %.

    For execution times (lower better): ``(baseline - improved) /
    baseline * 100``. Negative means a slowdown.
    """
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0


@dataclass
class ExperimentResult:
    """One table or figure's regenerated data."""

    name: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        out = [f"== {self.name} =="]
        out.append(format_table(self.headers, self.rows))
        if self.notes:
            out.append("")
            out.append(self.notes)
        return "\n".join(out)

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise KeyError(
                f"{self.name} has columns {self.headers}, not {header!r}"
            ) from None
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> list[Any]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"{self.name} has no row {key!r}")


def generate_report(
    repeats: int = 10,
    seed: int = 0,
    quick: bool = False,
    jobs: Optional[int] = None,
    cache=None,
) -> Iterator[ExperimentResult]:
    """Yield every table then every figure (the ``repro report`` data).

    ``quick`` caps repeats at 3 and skips the periodic figures.
    ``jobs`` / ``cache`` reach every experiment that runs through the
    sweep executor (Tables 1, Figures 3-6); output is byte-identical
    for any ``jobs`` value, and a warm cache skips every unchanged
    cell.
    """
    import repro.experiments as experiments

    if quick:
        repeats = min(repeats, 3)
    for number in sorted(REPORT_TABLES):
        fn = getattr(experiments, REPORT_TABLES[number])
        if number == 1:
            yield fn(seed=seed, jobs=jobs, cache=cache)
        else:
            yield fn()
    for number in sorted(REPORT_FIGURES):
        if quick and number in (7, 8):
            continue
        fn = getattr(experiments, REPORT_FIGURES[number])
        if number in _SWEEP_FIGURES:
            yield fn(repeats=repeats, seed=seed, jobs=jobs, cache=cache)
        elif number == 6:
            yield fn(seed=seed, jobs=jobs, cache=cache)
        elif number in _SEEDED_FIGURES:
            yield fn(seed=seed)
        else:
            yield fn()


def sweep_stats_section(name: str = "Sweep executor") -> ExperimentResult:
    """The process-wide sweep counters as one small table.

    Reads :func:`repro.experiments.sweep.sweep_metrics` — cells run,
    cache hits/misses, worker utilization — so ``repro report`` can
    show how much of the run was simulated versus served from cache.
    """
    from repro.experiments.sweep import sweep_metrics

    registry = sweep_metrics()
    result = ExperimentResult(name=name, headers=["metric", "value"])

    def value_of(metric_name: str) -> float:
        metric = registry.get(metric_name)
        return float(metric.value) if metric is not None else 0.0

    result.rows = [
        ["cells submitted", int(value_of("sweep_cells_total"))],
        ["cells simulated", int(value_of("sweep_cells_executed_total"))],
        ["cache hits", int(value_of("sweep_cache_hits_total"))],
        ["cache misses", int(value_of("sweep_cache_misses_total"))],
        ["worker utilization", f"{value_of('sweep_worker_utilization'):.2f}"],
        ["jobs (last sweep)", int(value_of("sweep_jobs"))],
    ]
    return result


def metrics_section(snapshot: dict, name: str = "Metrics") -> ExperimentResult:
    """Render a metrics snapshot as one aligned table.

    Histogram rows get count + p50/p95/p99 (milliseconds for metrics
    named ``*_seconds``); counters and gauges get their value. Rows come
    out in snapshot order, which is sorted, so the rendering is as
    deterministic as the snapshot itself.
    """
    result = ExperimentResult(
        name=name,
        headers=["metric", "labels", "kind", "count/value", "p50", "p95", "p99"],
    )
    for family in snapshot.get("metrics", []):
        in_ms = family["name"].endswith("_seconds")
        unit = " ms" if in_ms else ""
        scale = 1e3 if in_ms else 1.0

        for series in family["series"]:
            labels = ",".join(
                f"{k}={series['labels'][k]}" for k in sorted(series["labels"])
            ) or "-"
            if family["type"] == "histogram":
                pct = series["percentiles"]
                result.rows.append([
                    family["name"], labels, "histogram", series["count"],
                    f"{pct['p50'] * scale:.3f}{unit}",
                    f"{pct['p95'] * scale:.3f}{unit}",
                    f"{pct['p99'] * scale:.3f}{unit}",
                ])
            elif family["type"] == "gauge":
                result.rows.append([
                    family["name"], labels, "gauge",
                    f"{series['value']:g} (mean {series['time_weighted_mean']:.2f})",
                    "-", "-", "-",
                ])
            else:
                result.rows.append([
                    family["name"], labels, "counter",
                    f"{series['value']:g}", "-", "-", "-",
                ])
    return result
