"""Figure 6: throughput of the multi-image face detection application.

Section 4.2: the modified face-detection app processes up to 1000
images (read from PGM files) within a 60-second window; throughput is
images processed per second. Background load is n MG-B processes,
n in {0, 25, 50, 75, 100}. Vanilla/ARM is excluded (inferior in
Figures 3-5). Xar-Trek configures the FPGA at application start, which
is why it beats even the always-FPGA baseline.

Each (background, mode) window is one sweep cell (see
:mod:`repro.experiments.sweep`), so the figure fans out over ``jobs``
workers and caches per window.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import SystemMode
from repro.experiments.harness import MODE_LABELS
from repro.experiments.report import ExperimentResult
from repro.experiments.sweep import Cell, cells_for_throughput, run_cell, run_cells

__all__ = ["measure_throughput", "figure6_throughput"]

_MODES = (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)
_APP = "facedet.320"


def measure_throughput(
    mode: SystemMode,
    background: int,
    n_images: int = 1000,
    window_s: float = 60.0,
    seed: int = 0,
    delay_s: float = 0.0,
    reconfig_base_s: Optional[float] = None,
) -> float:
    """Images per second achieved by one 60 s run under ``background``.

    ``reconfig_base_s`` overrides the FPGA's programming time (used by
    the reconfiguration-time sensitivity study).
    """
    cell = Cell(
        kind="throughput",
        apps=(_APP,),
        mode=mode,
        seed=seed,
        background=background,
        calls=n_images,
        window_s=window_s,
        delay_s=delay_s,
        reconfig_base_s=reconfig_base_s,
    )
    return float(run_cell(cell).value)


def figure6_throughput(
    background_loads: Sequence[int] = (0, 25, 50, 75, 100),
    n_images: int = 1000,
    window_s: float = 60.0,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """Figure 6's series: throughput per background load per system."""
    headers = ["background"] + [f"{MODE_LABELS[m]} (img/s)" for m in _MODES]
    result = ExperimentResult(
        name="Figure 6: face-detection throughput vs background load",
        headers=headers,
    )
    cells = cells_for_throughput(
        _APP, _MODES, background_loads, n_images=n_images, window_s=window_s,
        seed=seed,
    )
    sweep = run_cells(cells, jobs=jobs, cache=cache)
    per_load = len(_MODES)
    for index, background in enumerate(background_loads):
        block = sweep.results[index * per_load : (index + 1) * per_load]
        result.rows.append([background] + [float(r.value) for r in block])
    result.notes = (
        "Paper: Xar-Trek matches x86 at low load, gains ~4x beyond 25 "
        "background processes (FPGA threshold is 16), and beats "
        "always-FPGA thanks to configuring the card at application start."
    )
    return result
