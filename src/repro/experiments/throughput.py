"""Figure 6: throughput of the multi-image face detection application.

Section 4.2: the modified face-detection app processes up to 1000
images (read from PGM files) within a 60-second window; throughput is
images processed per second. Background load is n MG-B processes,
n in {0, 25, 50, 75, 100}. Vanilla/ARM is excluded (inferior in
Figures 3-5). Xar-Trek configures the FPGA at application start, which
is why it beats even the always-FPGA baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import SystemMode, build_system
from repro.experiments.harness import MODE_LABELS
from repro.experiments.report import ExperimentResult

__all__ = ["measure_throughput", "figure6_throughput"]

_MODES = (SystemMode.VANILLA_X86, SystemMode.ALWAYS_FPGA, SystemMode.XAR_TREK)
_APP = "facedet.320"


def measure_throughput(
    mode: SystemMode,
    background: int,
    n_images: int = 1000,
    window_s: float = 60.0,
    seed: int = 0,
) -> float:
    """Images per second achieved by one 60 s run under ``background``."""
    runtime = build_system([_APP], seed=seed)
    load = runtime.launch_background(background) if background else None
    done = runtime.launch(
        _APP, seed=seed, mode=mode, calls=n_images, deadline_s=window_s
    )
    record = runtime.platform.sim.run_until_event(done)
    if load is not None:
        load.stop()
    return record.calls_completed / window_s


def figure6_throughput(
    background_loads: Sequence[int] = (0, 25, 50, 75, 100),
    n_images: int = 1000,
    window_s: float = 60.0,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 6's series: throughput per background load per system."""
    headers = ["background"] + [f"{MODE_LABELS[m]} (img/s)" for m in _MODES]
    result = ExperimentResult(
        name="Figure 6: face-detection throughput vs background load",
        headers=headers,
    )
    for background in background_loads:
        row: list = [background]
        for mode in _MODES:
            row.append(
                measure_throughput(
                    mode, background, n_images=n_images, window_s=window_s, seed=seed
                )
            )
        result.rows.append(row)
    result.notes = (
        "Paper: Xar-Trek matches x86 at low load, gains ~4x beyond 25 "
        "background processes (FPGA threshold is 16), and beats "
        "always-FPGA thanks to configuring the card at application start."
    )
    return result
