"""XRT-like host API over the simulated FPGA card.

Xar-Trek's hardware migration path uses OpenCL APIs from the Xilinx
Runtime Library (Section 3.2) to (1) configure the accelerator card,
(2) manage host<->card data movement, and (3) orchestrate kernel
execution. :class:`XRTDevice` reproduces that API surface against the
:class:`~repro.hardware.fpga.FPGADevice` model: configuration goes
through the device's reconfiguration path, buffers move over the shared
PCIe link, and kernel runs occupy the kernel's compute unit for the
latency recorded in the XCLBIN (or a caller-supplied duration).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.hardware.fpga import FPGADevice
from repro.hardware.interconnect import Link
from repro.metrics import MetricsRegistry
from repro.sim import Event, SimulationError, Simulator, Tracer

__all__ = ["Buffer", "KernelRun", "XRTDevice", "XRTError"]


class XRTError(Exception):
    """Raised for API misuse (unknown kernel, image not loaded, ...)."""


@dataclass
class Buffer:
    """A device buffer handle (``cl::Buffer`` / ``xrt::bo`` analogue)."""

    buffer_id: int
    nbytes: int
    on_device: bool = False


@dataclass(frozen=True)
class KernelRun:
    """Completed-run record, for tests and traces."""

    kernel_name: str
    bytes_in: int
    bytes_out: int
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class XRTDevice:
    """The host-side runtime for one accelerator card."""

    def __init__(
        self,
        sim: Simulator,
        fpga: FPGADevice,
        pcie: Link,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        host_cpu=None,
    ):
        """``host_cpu`` (a :class:`~repro.hardware.cpu.CPUCluster`) lets
        the device account how much CPU work executed *while* the card
        reconfigured — the latency Algorithm 2 hides."""
        self.sim = sim
        self.fpga = fpga
        self.pcie = pcie
        self.tracer = tracer or Tracer(enabled=False)
        self.host_cpu = host_cpu
        self._buffer_ids = itertools.count(1)
        self._loaded_image = None
        #: In-flight kernel executions (the scheduler must not
        #: reconfigure under a running kernel).
        self.active_runs = 0
        self.completed_runs: list[KernelRun] = []
        self.failed_runs = 0
        self._fail_next_runs: dict[str, int] = {}
        self.metrics = metrics or MetricsRegistry(clock=lambda: sim.now)
        self._m_reconfig = self.metrics.histogram(
            "fpga_reconfiguration_seconds",
            "wall time of each FPGA reconfiguration (incl. failed)",
        )
        self._m_reconfig_total = self.metrics.counter(
            "fpga_reconfiguration_seconds_total",
            "total time spent programming the card",
        )
        self._m_overlap = self.metrics.counter(
            "fpga_reconfig_overlap_core_seconds_total",
            "x86 core-seconds executed while a reconfiguration was in flight",
        )
        self._m_occupancy = self.metrics.gauge(
            "fpga_active_runs", "in-flight kernel invocations on the card"
        )
        self._m_kernel_runs = self.metrics.histogram(
            "fpga_kernel_run_seconds",
            "end-to-end h2d+execute+d2h time per kernel invocation",
            labelnames=("kernel",),
        )
        self._m_run_failures = self.metrics.counter(
            "fpga_kernel_failures_total",
            "kernel invocations that failed mid-flight",
            labelnames=("kernel",),
        )
        #: kernel -> histogram child; labels() revalidation is hot on
        #: the per-invocation path.
        self._run_hist_children: dict = {}

    # -- fault injection ---------------------------------------------------
    def inject_run_failures(self, kernel_name: str, count: int = 1) -> None:
        """Make the next ``count`` runs of ``kernel_name`` fail mid-flight
        (ECC error, watchdog timeout, ...). Callers are expected to
        retry and/or fall back to a CPU target.

        All arguments are validated *before* any state changes, and
        repeated arming is **additive**: arming 2 then 3 failures makes
        the next 5 runs of the kernel fail. Counters are consumed
        strictly in run order, one per started run.
        """
        if not isinstance(kernel_name, str) or not kernel_name:
            raise XRTError(f"kernel name must be a non-empty string, got {kernel_name!r}")
        if not isinstance(count, int) or isinstance(count, bool):
            raise XRTError(f"failure count must be an int, got {count!r}")
        if count < 0:
            raise XRTError("failure count must be non-negative")
        self._fail_next_runs[kernel_name] = (
            self._fail_next_runs.get(kernel_name, 0) + count
        )

    def pending_run_failures(self, kernel_name: str) -> int:
        """Armed-but-unconsumed run failures for ``kernel_name``."""
        return self._fail_next_runs.get(kernel_name, 0)

    # -- configuration ------------------------------------------------------
    def load_xclbin(self, image) -> Event:
        """Program the card with ``image``; free if already loaded.

        ``image`` must satisfy the ``ConfigImage`` protocol (an
        :class:`~repro.compiler.xclbin.XCLBIN` does).
        """
        if self.active_runs and (
            self.fpga.configured_image is None
            or self.fpga.configured_image.name != image.name
        ):
            raise XRTError("cannot load a different XCLBIN while kernels run")
        self._loaded_image = image
        reconfigs_before = self.fpga.reconfiguration_count
        done = self.fpga.configure(image)
        if self.fpga.reconfiguration_count > reconfigs_before:
            # A real programming pass started (not a cache hit / shared
            # in-flight wait): account its duration and how much host
            # CPU work ran concurrently — the hidden latency.
            started_at = self.sim.now
            cpu_busy_before = (
                self.host_cpu.busy_core_seconds() if self.host_cpu else 0.0
            )

            def account(_event: Event) -> None:
                elapsed = self.sim.now - started_at
                self._m_reconfig.observe(elapsed)
                self._m_reconfig_total.inc(elapsed)
                if self.host_cpu is not None:
                    self._m_overlap.inc(
                        max(0.0, self.host_cpu.busy_core_seconds() - cpu_busy_before)
                    )

            done.callbacks.append(account)
        return done

    @property
    def ready(self) -> bool:
        return bool(self.fpga.available_kernels)

    def has_kernel(self, kernel_name: str) -> bool:
        return self.fpga.has_kernel(kernel_name)

    @property
    def reconfiguring(self) -> bool:
        return self.fpga.reconfiguring

    def wait_reconfigured(self) -> Event:
        """Event firing when the in-flight reconfiguration settles
        (successfully or not); immediate when none is in flight."""
        return self.fpga.settled()

    def load_snapshot(self) -> dict[str, float]:
        """O(1) gauge-shaped occupancy aggregates for the card, the
        accelerator analogue of ``CPUCluster.load_snapshot`` — so
        load-based placement (node-local or fleet gossip) is not blind
        to FPGA pressure.

        On top of the occupancy-gauge keys (``value`` = in-flight
        kernel runs, ``min``/``max``, ``time_weighted_mean``,
        ``updates``) it reports ``reconfiguring`` (1.0 while a
        programming pass is in flight — new runs queue behind it) and
        ``resident_kernels`` (CUs usable on the configured image).
        """
        snapshot = dict(self._m_occupancy.aggregates())
        snapshot["reconfiguring"] = 1.0 if self.reconfiguring else 0.0
        snapshot["resident_kernels"] = float(len(self.fpga.available_kernels))
        return snapshot

    # -- buffers -----------------------------------------------------------
    def alloc_buffer(self, nbytes: int) -> Buffer:
        if nbytes < 0:
            raise XRTError(f"negative buffer size {nbytes}")
        return Buffer(buffer_id=next(self._buffer_ids), nbytes=nbytes)

    def sync_to_device(self, buffer: Buffer) -> Event:
        """Host -> card over PCIe (``clEnqueueMigrateMemObjects``)."""
        done = self.sim.event()
        transfer = self.pcie.transfer(buffer.nbytes, tag=("xrt-h2d", buffer.buffer_id))

        def mark(_ev: Event) -> None:
            buffer.on_device = True
            done.succeed(buffer)

        transfer.callbacks.append(mark)
        return done

    def sync_from_device(self, buffer: Buffer) -> Event:
        """Card -> host over PCIe."""
        if not buffer.on_device:
            raise XRTError(f"buffer {buffer.buffer_id} is not on the device")
        done = self.sim.event()
        transfer = self.pcie.transfer(buffer.nbytes, tag=("xrt-d2h", buffer.buffer_id))
        transfer.callbacks.append(lambda _ev: done.succeed(buffer))
        return done

    # -- execution -----------------------------------------------------------
    def kernel_latency(self, kernel_name: str) -> float:
        """The synthesized latency recorded in the loaded XCLBIN."""
        image = self._loaded_image
        if image is None or not hasattr(image, "kernel"):
            raise XRTError(f"no XCLBIN with latency info for {kernel_name!r}")
        return image.kernel(kernel_name).kernel_latency_s

    def run_kernel(
        self,
        kernel_name: str,
        bytes_in: int,
        bytes_out: int,
        duration: Optional[float] = None,
    ) -> Event:
        """One complete hardware invocation: h2d, execute, d2h.

        ``duration`` overrides the XCLBIN's synthesized latency (the
        calibrated profiles use this). The event fires with a
        :class:`KernelRun` record.
        """
        if not self.has_kernel(kernel_name):
            raise XRTError(
                f"kernel {kernel_name!r} is not loaded "
                f"(available: {list(self.fpga.available_kernels)})"
            )
        if duration is None:
            duration = self.kernel_latency(kernel_name)
        sim = self.sim
        done = sim.event()
        started = sim.now
        self.active_runs += 1
        self._m_occupancy.set(self.active_runs)

        fail_this_run = self._fail_next_runs.get(kernel_name, 0) > 0
        if fail_this_run:
            self._fail_next_runs[kernel_name] -= 1

        in_buf = self.alloc_buffer(bytes_in)
        out_buf = self.alloc_buffer(bytes_out)

        # The h2d -> execute -> d2h sequence as a callback chain rather
        # than a generator process: one run used to cost two process
        # bootstraps plus an event per stage boundary, all on the
        # hottest path of the FPGA experiments.
        def fail(exc: Exception) -> None:
            self.active_runs -= 1
            self._m_occupancy.set(self.active_runs)
            self.failed_runs += 1
            self._m_run_failures.labels(kernel=kernel_name).inc()
            done.fail(XRTError(str(exc)))

        def finish(_ev: Optional[Event] = None) -> None:
            self.active_runs -= 1
            self._m_occupancy.set(self.active_runs)
            run = KernelRun(
                kernel_name=kernel_name,
                bytes_in=bytes_in,
                bytes_out=bytes_out,
                started_at=started,
                finished_at=sim.now,
            )
            self.completed_runs.append(run)
            hist = self._run_hist_children.get(kernel_name)
            if hist is None:
                hist = self._run_hist_children[kernel_name] = (
                    self._m_kernel_runs.labels(kernel=kernel_name)
                )
            hist.observe(run.duration)
            if self.tracer.enabled:
                self.tracer.record(
                    "xrt",
                    f"{kernel_name} run complete ({run.duration * 1e3:.2f} ms)",
                    kernel=kernel_name,
                    duration=run.duration,
                )
            done.succeed(run)

        def after_execute(ev: Event) -> None:
            if not ev.ok:
                # The device failed the run mid-flight (crash window).
                fail(ev.value)
                return
            out_buf.on_device = True
            if bytes_out:
                transfer = self.pcie.transfer(
                    bytes_out, tag=("xrt-d2h", out_buf.buffer_id)
                )
                transfer.callbacks.append(finish)
            else:
                finish()

        def start_execute(_ev: Optional[Event] = None) -> None:
            in_buf.on_device = bool(bytes_in)
            if fail_this_run:
                # The fault surfaces partway through the kernel run.
                sim.call_in(
                    duration / 2,
                    lambda: fail(SimulationError(f"kernel {kernel_name} run fault")),
                )
                return
            try:
                execute_done = self.fpga.execute(kernel_name, duration)
            except SimulationError as exc:
                fail(exc)
                return
            # A crash can fail the device-side event; the failure is
            # converted to an XRTError on `done` above, so defuse it.
            execute_done.defused = True
            execute_done.callbacks.append(after_execute)

        if bytes_in:
            transfer = self.pcie.transfer(bytes_in, tag=("xrt-h2d", in_buf.buffer_id))
            transfer.callbacks.append(start_execute)
        else:
            start_execute()
        return done
