"""XRT/OpenCL-like host runtime for the simulated accelerator card."""

from repro.xrt.device import Buffer, KernelRun, XRTDevice, XRTError

__all__ = ["Buffer", "KernelRun", "XRTDevice", "XRTError"]
