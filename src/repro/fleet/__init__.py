"""Fleet-scale sharded scheduling across multi-node deployments.

The warehouse-scale tier on top of the paper's single-node system:
N complete x86+ARM+FPGA deployments on one simulated clock, a gossip
bus publishing stale load digests, and a sticky /
power-of-two-choices router doing two-level placement (the fleet picks
the node; the node's Algorithm-2 scheduler picks the target). See
``docs/fleet.md``.
"""

from repro.fleet.deployment import (
    DATACENTER_FABRIC,
    FleetCohortResult,
    FleetConfig,
    FleetDeployment,
    FleetError,
    node_seeds,
)
from repro.fleet.gossip import GossipBus, GossipError, LoadDigest
from repro.fleet.node import FleetNode
from repro.fleet.parallel import (
    FLEET_JOBS_ENV,
    NodeWork,
    NodeWorkResult,
    fleet_parallel_threshold,
    resolve_fleet_jobs,
    run_node_work,
)
from repro.fleet.router import FleetRouter, RouteOutcome

__all__ = [
    "DATACENTER_FABRIC",
    "FLEET_JOBS_ENV",
    "FleetCohortResult",
    "FleetConfig",
    "FleetDeployment",
    "FleetError",
    "FleetNode",
    "FleetRouter",
    "GossipBus",
    "GossipError",
    "LoadDigest",
    "NodeWork",
    "NodeWorkResult",
    "RouteOutcome",
    "fleet_parallel_threshold",
    "node_seeds",
    "resolve_fleet_jobs",
    "run_node_work",
]
