"""Client routing across fleet nodes (the federated scheduler tier).

Two-level placement, level one: the router picks *which node* serves a
client, and the node's own Algorithm-2 scheduler picks the target
(x86/ARM/FPGA) within it. The policy is sticky-by-default with
power-of-two-choices rebalancing on gossip deltas:

* a client keeps its node while the node is healthy and its *stale*
  gossip score stays within ``rebalance_factor`` of the fleet's stale
  minimum (stickiness preserves working-set locality);
* otherwise — first contact, node outage, or a gossip delta showing
  the node overloaded — the router draws two distinct candidates from
  its own seeded RNG stream and takes the less loaded one by stale
  score (ties to the lower index), the classic power-of-two-choices
  rule that needs only O(1) stale reads per decision;
* a reassignment of an already-placed client is a *cross-node
  migration*: its working set moves over the inter-node fabric through
  the fleet DSM, so migration churn shows up as real link traffic and
  page-transfer counts, not just a counter.

Every decision that consulted gossip records the digest's age into the
staleness histogram — the bounded-staleness guarantee is measured, not
assumed. The router draws from its own RNG stream, never from any
node's platform RNG, so routing can never perturb in-node behaviour
(load-bearing for the 1-node fleet == single-node runtime differential
test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.metrics import MetricsRegistry
from repro.popcorn.dsm import DSM
from repro.workloads import profile_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.gossip import GossipBus
    from repro.fleet.node import FleetNode

__all__ = ["FleetRouter", "RouteOutcome"]

#: Where per-client fleet working sets live in the (modelled) address
#: space; far above the per-application bases so fleet DSM ranges can
#: never collide with an application's own pages.
_WORKING_SET_BASE = 0x4000_0000

_PAGE = 4096


class RouteOutcome:
    """The label values of ``fleet_routes_total{outcome=...}``."""

    INITIAL = "initial"
    STICKY = "sticky"
    REBALANCE = "rebalance"
    FAILOVER = "failover"


class FleetRouter:
    """Sticky / power-of-two-choices routing over stale gossip load."""

    def __init__(
        self,
        nodes: "list[FleetNode]",
        gossip: "GossipBus",
        rng: np.random.Generator,
        metrics: MetricsRegistry,
        dsm: Optional[DSM] = None,
        rebalance_factor: float = 2.0,
    ):
        if rebalance_factor < 1.0:
            raise ValueError(
                f"rebalance_factor must be >= 1, got {rebalance_factor}"
            )
        self.nodes = list(nodes)
        self.gossip = gossip
        self.rng = rng
        self.dsm = dsm
        self.rebalance_factor = float(rebalance_factor)
        #: client key -> node index (the sticky table).
        self.assignments: dict[object, int] = {}
        #: Clients currently assigned per node — the router's *local*
        #: state (not gossip), used as the power-of-two tie-breaker so
        #: a wave of arrivals inside one gossip interval spreads out
        #: instead of herding onto the stale all-equal view.
        self._assigned_counts = [0] * len(self.nodes)
        #: client key -> (base address, page count) of its fleet DSM
        #: working-set range (allocated on first cross-node migration).
        self._working_sets: dict[object, tuple[int, int]] = {}
        self._next_base = _WORKING_SET_BASE
        #: ``(gossip version, candidate indexes) -> fleet floor``.
        #: Digest scores only change at gossip rounds, so the min over
        #: the candidates is constant between publishes for a fixed
        #: candidate set; recomputing it per route() made _overloaded
        #: O(nodes) on every sticky decision.
        self._floor_cache: Optional[tuple[int, tuple[int, ...], float]] = None
        self._m_routes = metrics.counter(
            "fleet_routes_total",
            "fleet routing decisions by outcome",
            labelnames=("outcome",),
        )
        self._m_migrations = metrics.counter(
            "fleet_cross_node_migrations_total",
            "clients moved between nodes (rebalance or failover)",
        )
        self._m_migration_bytes = metrics.counter(
            "fleet_cross_node_migration_bytes_total",
            "working-set bytes shipped across the inter-node fabric",
        )

    # -- statistics --------------------------------------------------------
    @property
    def cross_node_migrations(self) -> int:
        return int(self._m_migrations.value)

    @property
    def migration_bytes(self) -> float:
        return float(self._m_migration_bytes.value)

    def clients_per_node(self) -> list[int]:
        return list(self._assigned_counts)

    # -- the decision ------------------------------------------------------
    def route(self, client_key: object, app: str) -> "tuple[FleetNode, str]":
        """Pick the node for ``client_key``'s next run of ``app``.

        Returns ``(node, outcome)`` with ``outcome`` one of
        :class:`RouteOutcome`'s labels. Cross-node DSM traffic for a
        reassignment is started here (the payload travels while the
        client's run proceeds, as Popcorn's migration path does).
        """
        candidates = [n for n in self.nodes if n.healthy]
        if not candidates:
            # Every daemon is down: route to the sticky/stale-best node
            # anyway — the client's request will raise
            # SchedulerUnavailable and take its local x86 fallback,
            # which is the single-node degradation path.
            candidates = self.nodes
        assigned = self.assignments.get(client_key)

        if assigned is None:
            node = self._power_of_two(candidates)
            outcome = RouteOutcome.INITIAL
        elif not self.nodes[assigned].healthy and self.nodes[assigned] not in candidates:
            node = self._power_of_two(candidates)
            outcome = RouteOutcome.FAILOVER
        else:
            current = self.nodes[assigned]
            if self._overloaded(current, candidates):
                choice = self._power_of_two(candidates)
                if choice is not current:
                    node, outcome = choice, RouteOutcome.REBALANCE
                else:
                    node, outcome = current, RouteOutcome.STICKY
            else:
                node, outcome = current, RouteOutcome.STICKY

        if assigned is not None and node.index != assigned:
            self._migrate(client_key, app, self.nodes[assigned], node)
            self._assigned_counts[assigned] -= 1
            self._assigned_counts[node.index] += 1
        elif assigned is None:
            self._assigned_counts[node.index] += 1
        self.assignments[client_key] = node.index
        self._m_routes.labels(outcome=outcome).inc()
        return node, outcome

    def _overloaded(self, node: "FleetNode", candidates: "list[FleetNode]") -> bool:
        """Gossip-delta check: is ``node``'s stale score more than
        ``rebalance_factor`` times the stale fleet minimum? A published
        brownout rung (>= 1) is treated as overloaded outright — the
        node told the fleet it is degrading, so the router tries to
        move the client *before* the node starts shedding, instead of
        waiting for its load score to cross the rebalance ratio."""
        digest = self.gossip.digest(node.index)
        self.gossip.observe_staleness(digest)
        if digest.brownout >= 1:
            return True
        return digest.score > self.rebalance_factor * max(
            self._fleet_floor(candidates), 1.0
        )

    def _fleet_floor(self, candidates: "list[FleetNode]") -> float:
        """min stale score over ``candidates``, cached per gossip round.

        The cache key is ``(publication version, candidate indexes)``:
        a publish bumps the version, and a health change alters the
        candidate set, so both invalidate. Only the node's *own* digest
        was ever staleness-observed here, so caching changes no metric.
        """
        version = self.gossip.version
        key = tuple(c.index for c in candidates)
        cached = self._floor_cache
        if cached is not None and cached[0] == version and cached[1] == key:
            return cached[2]
        floor = min(self.gossip.digest(c.index).score for c in candidates)
        self._floor_cache = (version, key, floor)
        return floor

    def _power_of_two(self, candidates: "list[FleetNode]") -> "FleetNode":
        """Two independent stale reads, keep the emptier node.

        Stale scores tie constantly inside one gossip interval (every
        digest still shows the last round), so ties fall back to the
        router's own assignment counts — local knowledge it legally
        has — and only then to the lower index.
        """
        if len(candidates) == 1:
            return candidates[0]
        i, j = self.rng.choice(len(candidates), size=2, replace=False)
        first, second = candidates[int(i)], candidates[int(j)]
        a = self.gossip.digest(first.index)
        b = self.gossip.digest(second.index)
        self.gossip.observe_staleness(a)
        self.gossip.observe_staleness(b)
        if a.score != b.score:
            return first if a.score < b.score else second
        assigned_a = self._assigned_counts[first.index]
        assigned_b = self._assigned_counts[second.index]
        if assigned_a != assigned_b:
            return first if assigned_a < assigned_b else second
        return first if first.index < second.index else second

    # -- cross-node migration ----------------------------------------------
    def _migrate(
        self, client_key: object, app: str, src: "FleetNode", dst: "FleetNode"
    ) -> None:
        """Ship the client's working set ``src -> dst`` over the fabric."""
        self._m_migrations.inc()
        if self.dsm is None:
            return
        base, npages = self._working_set(client_key, app, src)
        addrs = range(base, base + npages * _PAGE, _PAGE)
        self._m_migration_bytes.inc(npages * _PAGE)
        done = self.dsm.migrate_pages(src.name, dst.name, addrs)
        done.defused = True  # accounting traffic; nobody waits on it

    def _working_set(
        self, client_key: object, app: str, src: "FleetNode"
    ) -> tuple[int, int]:
        """The client's fleet-DSM page range, seeded at ``src`` on
        first use (pages it dirtied before ever migrating)."""
        existing = self._working_sets.get(client_key)
        if existing is not None:
            return existing
        nbytes = profile_for(app).migration_state_bytes
        npages = max(1, -(-nbytes // _PAGE))
        base = self._next_base
        self._next_base += npages * _PAGE
        self.dsm.seed_pages(src.name, range(base, base + npages * _PAGE, _PAGE))
        self._working_sets[client_key] = (base, npages)
        return base, npages
