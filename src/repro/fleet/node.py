"""One fleet node: a full single-node Xar-Trek deployment.

A :class:`FleetNode` wraps an :class:`~repro.core.runtime.XarTrekRuntime`
(its own x86 + ARM clusters, FPGA card, scheduler daemon, and DSM)
built on the *shared* fleet simulator, plus the node-level view the
federated tier needs: a health probe and the :class:`LoadDigest` it
publishes on the gossip bus. Placement inside the node stays with the
node's own Algorithm-2 scheduler — the fleet tier only picks *which*
node a client talks to (two-level placement).
"""

from __future__ import annotations

from repro.core.runtime import XarTrekRuntime
from repro.fleet.gossip import LoadDigest

__all__ = ["FleetNode"]


class FleetNode:
    """A named, indexed single-node deployment inside a fleet."""

    def __init__(self, index: int, runtime: XarTrekRuntime, seed: int):
        self.index = index
        self.name = f"node{index}"
        self.runtime = runtime
        #: The SeedSequence-derived seed this node's platform was built
        #: with; the 1-node differential test rebuilds the reference
        #: single-node system from exactly this value.
        self.seed = seed

    # -- convenience accessors --------------------------------------------
    @property
    def platform(self):
        return self.runtime.platform

    @property
    def server(self):
        return self.runtime.server

    @property
    def records(self):
        return self.runtime.records

    @property
    def healthy(self) -> bool:
        """Control-plane liveness: is the node's scheduler daemon up?

        Unlike load (which travels via gossip and is stale), liveness
        is probed directly — the fleet tier notices an outage at the
        next routing decision, so failover does not wait for a tick.
        """
        return self.runtime.server.running

    def digest(self, now: float) -> LoadDigest:
        """This node's gossip payload, stamped ``published_at=now``."""
        snapshot = self.runtime.load_snapshot()
        admission = self.runtime.server.admission_snapshot()
        return LoadDigest(
            node=self.name,
            index=self.index,
            published_at=now,
            x86_active=snapshot["x86"]["value"],
            arm_active=snapshot["arm"]["value"],
            fpga_active=snapshot["fpga"]["value"],
            fpga_reconfiguring=bool(snapshot["fpga"]["reconfiguring"]),
            queue_depth=admission["queue_depth"],
            brownout=int(admission["brownout"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FleetNode({self.name}, seed={self.seed})"
