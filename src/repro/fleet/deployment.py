"""A multi-node Xar-Trek fleet on one simulated clock.

:class:`FleetDeployment` builds N complete single-node deployments
(each its own x86 + ARM clusters, FPGA, scheduler daemon, and in-node
DSM — exactly what :func:`repro.core.build_system` produces) on one
shared :class:`~repro.sim.Simulator`, then layers the federated tier on
top: a :class:`~repro.fleet.gossip.GossipBus` publishing per-node load
digests every ``gossip_interval_s``, a
:class:`~repro.fleet.router.FleetRouter` doing sticky /
power-of-two-choices placement on the stale digests, and a fleet-level
DSM over the inter-node fabric that accounts cross-node client
migrations as real page traffic.

Determinism contract (tested):

* node seeds come from ``numpy.random.SeedSequence(seed).spawn(n)``,
  so node ``i``'s platform is a pure function of ``(seed, i)`` and is
  insensitive to the fleet size;
* the fleet tier draws from its own RNG stream, never a node's, and
  routing adds zero simulated time — a 1-node fleet is bit-identical
  to the plain single-node :class:`~repro.core.runtime.XarTrekRuntime`
  path (the differential test in ``tests/fleet`` holds this the same
  way the cohort oracle holds vectorized == reference);
* replaying the same config replays every record and counter.

Cohort-scale populations (the 10k-client ``fleet_stress`` shape) are
sharded across nodes at *assignment time*: clients are walked in global
arrival order, the router's load view refreshes only at gossip-interval
boundaries (the stale-load model, quantized), and each node then runs
its assigned sub-cohorts through the vectorized
:class:`~repro.core.cohort.CohortPopulation` on a fresh per-node
simulator — the cohort model is open-loop, so its clock is independent
of the fleet's hardware clock by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.cohort import (
    ArrivalLaw,
    CohortPopulation,
    CohortRunResult,
    CohortSpec,
    sample_arrivals,
)
from repro.core.runtime import build_system
from repro.fleet.gossip import GossipBus
from repro.fleet.node import FleetNode
from repro.fleet.router import FleetRouter
from repro.hardware.interconnect import Link, LinkSpec
from repro.hardware.platform import HeterogeneousPlatform
from repro.metrics import MetricsRegistry
from repro.popcorn.dsm import DSM
from repro.sim import Event, RandomStreams, Simulator
from repro.workloads import PAPER_BENCHMARKS

__all__ = [
    "DATACENTER_FABRIC",
    "FleetConfig",
    "FleetCohortResult",
    "FleetDeployment",
    "FleetError",
    "node_seeds",
]

#: The inter-node fabric: 10 GbE-class datacenter network (vs the
#: 1 Gbps in-node Ethernet between a node's x86 and ARM servers).
DATACENTER_FABRIC = LinkSpec("fabric", bandwidth_bytes_per_s=1.25e9, latency_s=50e-6)


class FleetError(Exception):
    """Raised for malformed fleet configs or misuse of a deployment."""


def node_seeds(seed: int, n_nodes: int) -> list[int]:
    """Per-node platform seeds via ``SeedSequence(seed).spawn(n)``.

    Exposed so the differential test can rebuild node ``i``'s exact
    single-node reference system outside any fleet.
    """
    children = np.random.SeedSequence(seed).spawn(n_nodes)
    return [int(child.generate_state(1)[0]) for child in children]


@dataclass(frozen=True)
class FleetConfig:
    """Static description of a fleet deployment."""

    nodes: int = 2
    apps: tuple[str, ...] = tuple(sorted(set(PAPER_BENCHMARKS)))
    seed: int = 0
    #: How often every node republishes its load digest (simulated
    #: seconds); remote decisions are at most this stale.
    gossip_interval_s: float = 1.0
    #: A sticky client is reconsidered when its node's stale score
    #: exceeds this multiple of the stale fleet minimum.
    rebalance_factor: float = 2.0
    use_dsm: bool = True
    replicate_compute_units: bool = False

    def __post_init__(self):
        if self.nodes < 1:
            raise FleetError(f"a fleet needs >= 1 node, got {self.nodes}")
        if self.gossip_interval_s <= 0:
            raise FleetError(
                f"gossip_interval_s must be positive, got {self.gossip_interval_s}"
            )
        if not self.apps:
            raise FleetError("a fleet needs at least one application")


@dataclass
class FleetCohortResult:
    """A sharded cohort run: per-node results plus fleet aggregates."""

    #: ``(node index, that node's CohortRunResult)`` in node order;
    #: nodes that received no clients are absent.
    node_results: list[tuple[int, CohortRunResult]]
    clients: int
    logical_events: int
    sim_events: int
    #: The slowest node's completion horizon (nodes run concurrently).
    sim_seconds: float
    assigned_per_node: list[int]
    #: How the node runs executed: ``"serial"`` or ``"parallel"``.
    #: Execution mode never appears in :meth:`lines` — the two paths
    #: are byte-identical there by contract.
    mode: str = "serial"
    #: Worker processes the run actually used (1 when serial).
    workers: int = 1
    #: Node runtimes built fresh in workers this call (0 once every
    #: worker's runtime cache is warm — the pool-reuse observable).
    worker_rebuilds: int = 0

    @property
    def fault_fallbacks(self) -> int:
        return sum(result.fault_fallbacks for _index, result in self.node_results)

    def assignment_skew(self) -> int:
        """max - min clients assigned per node."""
        return max(self.assigned_per_node) - min(self.assigned_per_node)

    def lines(self) -> list[str]:
        """Deterministic checksum lines: per-node headers + each
        node's own cohort lines (repr-float exact, like the single-node
        path)."""
        out = []
        for index, result in self.node_results:
            out.append(
                f"node{index} clients={result.clients} "
                f"events={result.logical_events} path={result.path}"
            )
            out.extend(result.lines())
        out.append(
            "assigned=" + ",".join(str(c) for c in self.assigned_per_node)
        )
        return out


class FleetDeployment:
    """N single-node deployments federated behind one routing tier."""

    def __init__(
        self,
        config: FleetConfig,
        trace: bool = False,
        **runtime_options,
    ):
        """Extra keyword arguments (``resilience``, ``policy``, ...)
        are forwarded to every node's :class:`XarTrekRuntime`."""
        self.config = config
        self.sim = Simulator()
        self.seeds = node_seeds(config.seed, config.nodes)
        self.nodes: list[FleetNode] = []
        for index, seed in enumerate(self.seeds):
            platform = HeterogeneousPlatform(sim=self.sim, seed=seed, trace=trace)
            runtime = build_system(
                config.apps,
                seed=seed,
                platform=platform,
                use_dsm=config.use_dsm,
                replicate_compute_units=config.replicate_compute_units,
                **runtime_options,
            )
            self.nodes.append(FleetNode(index, runtime, seed))

        #: The fleet tier's own telemetry spine, separate from every
        #: node's registry (a node stays bit-identical to its
        #: single-node twin; fleet counters live up here).
        self._streams = RandomStreams(config.seed).spawn("fleet")
        self.metrics = MetricsRegistry(
            clock=lambda: self.sim.now, rng=self._streams.spawn("metrics")
        )
        self.fabric = Link(self.sim, DATACENTER_FABRIC)
        self.dsm = DSM(self.sim, self.fabric)
        for node in self.nodes:
            self.dsm.add_node(node.name)
        self.gossip = GossipBus(
            self.sim, self.nodes, config.gossip_interval_s, self.metrics
        )
        self.router = FleetRouter(
            self.nodes,
            self.gossip,
            rng=self._streams.stream("router"),
            metrics=self.metrics,
            dsm=self.dsm,
            rebalance_factor=config.rebalance_factor,
        )
        self._auto_clients = 0
        self.gossip.start()

    # -- lookups -----------------------------------------------------------
    def node(self, index: int) -> FleetNode:
        return self.nodes[index]

    def records(self) -> list:
        """All nodes' run records, node-major (each node's in
        completion order, as on the single-node path)."""
        out = []
        for node in self.nodes:
            out.extend(node.records)
        return out

    def load_skew(self) -> float:
        """max - min published node load score (stale, by design)."""
        return self.gossip.load_skew()

    # -- the per-client path -----------------------------------------------
    def launch(
        self,
        app_name: str,
        client: Optional[object] = None,
        delay_s: float = 0.0,
        **launch_options,
    ) -> Event:
        """Route and start one application run; fires with its record.

        ``client`` is the sticky routing key — runs sharing a key stay
        on one node until a gossip delta or an outage moves them (and
        the move ships their working set over the fabric). Omitting it
        makes the run its own one-shot client. Remaining options go to
        :meth:`XarTrekRuntime.launch` (seed, mode, calls, ...).

        Routing happens when the client *starts* (after ``delay_s``),
        not when this call is made — a staggered client must be placed
        against the gossip state of its start time, or every client of
        a wave would herd onto the round-0 view.
        """
        if client is None:
            client = f"anon{self._auto_clients}"
            self._auto_clients += 1
        if delay_s <= 0:
            node, _outcome = self.router.route(client, app_name)
            return node.runtime.launch(app_name, **launch_options)
        done = self.sim.event()

        def forward(ev: Event) -> None:
            if ev.ok:
                done.succeed(ev.value)
            else:
                done.fail(ev.value)

        def kick() -> None:
            node, _outcome = self.router.route(client, app_name)
            inner = node.runtime.launch(app_name, **launch_options)
            # The caller only holds `done`; a failed run must propagate
            # through it rather than crash the whole simulation.
            inner.defused = True
            inner.callbacks.append(forward)

        self.sim.defer(delay_s, kick)
        return done

    def wait_all(self, events: Iterable[Event]) -> list:
        """Run the shared simulation until every event fires."""
        return [self.sim.run_until_event(event) for event in events]

    def stop(self) -> None:
        """Cancel the gossip tick (so ``sim.run()`` can drain); the
        node daemons keep running."""
        self.gossip.stop()

    # -- the cohort path ----------------------------------------------------
    def shard_cohorts(
        self, specs: Sequence[CohortSpec]
    ) -> tuple[list[list[CohortSpec]], list[int]]:
        """Assign every client of every spec to a node on stale load.

        Clients are walked in global arrival order; the router's
        per-node client-count view refreshes only at gossip-interval
        boundaries (each client's observed staleness is recorded), and
        placement is power-of-two-choices over that stale view. Each
        node's sub-spec keeps its clients in original client-index
        order with their exact arrival times (``explicit`` law), so a
        1-node fleet reproduces the original cohort bit for bit.

        Returns ``(per-node spec lists, clients assigned per node)``.
        """
        specs = tuple(specs)
        n = len(self.nodes)
        arrivals = [sample_arrivals(spec) for spec in specs]
        order = sorted(
            (float(arr[ci]), si, ci)
            for si, arr in enumerate(arrivals)
            for ci in range(len(arr))
        )
        interval = self.config.gossip_interval_s
        # A fresh derived generator per call (not the cached stateful
        # stream): sharding is a pure function of (config, specs), so
        # inspecting a sharding with shard_cohorts() and then running
        # run_cohorts() executes exactly the sharding inspected.
        rng = self._streams.spawn("cohort-shard").stream("assign")
        true_counts = [0] * n
        stale_counts = [0] * n
        last_boundary = 0.0
        assignment = [np.zeros(len(arr), dtype=np.int64) for arr in arrivals]
        for t, si, ci in order:
            boundary = math.floor(t / interval) * interval
            if boundary > last_boundary:
                stale_counts = list(true_counts)
                last_boundary = boundary
            self.gossip.record_staleness(t - last_boundary)
            if n == 1:
                node = 0
            else:
                i, j = rng.choice(n, size=2, replace=False)
                i, j = int(i), int(j)
                if stale_counts[i] < stale_counts[j]:
                    node = i
                elif stale_counts[j] < stale_counts[i]:
                    node = j
                else:
                    node = min(i, j)
            true_counts[node] += 1
            assignment[si][ci] = node

        per_node: list[list[CohortSpec]] = [[] for _ in range(n)]
        for si, spec in enumerate(specs):
            for node in range(n):
                indexes = np.flatnonzero(assignment[si] == node)
                if not len(indexes):
                    continue
                times = tuple(float(arrivals[si][ci]) for ci in indexes)
                per_node[node].append(
                    CohortSpec(
                        app=spec.app,
                        clients=len(times),
                        calls=spec.calls,
                        arrival=ArrivalLaw(kind="explicit", times=times),
                        seed=spec.seed,
                    )
                )
        return per_node, true_counts

    def run_cohorts(
        self,
        specs: Sequence[CohortSpec],
        background: int = 0,
        vectorized: Optional[bool] = None,
        fault_plans: Optional[dict[int, object]] = None,
        jobs: Optional[int | str] = None,
        min_nodes: Optional[int] = None,
    ) -> FleetCohortResult:
        """Shard ``specs`` across the fleet and run every node's share.

        ``background`` is the per-node resident background process
        count (each node has its own MG-B pool). ``fault_plans`` maps
        node index -> :class:`~repro.faults.plan.FaultPlan`, resolved
        to that node's sub-cohorts ahead of time. Each node's
        population runs on a fresh simulator (the cohort model is
        open-loop; nodes are concurrent, so the fleet horizon is the
        slowest node's).

        ``jobs`` > 1 fans the node runs out over the persistent sweep
        worker pool (default: the ``REPRO_FLEET_JOBS`` env var, serial
        if unset). Results merge in node-index order and the parallel
        result — including :meth:`FleetCohortResult.lines` — is
        byte-identical to serial; worker-side runs are replayed into
        each node's own metrics registry so the observability contract
        holds too. A multi-job call still runs serially below
        ``min_nodes`` non-empty shards (default
        :func:`~repro.fleet.parallel.fleet_parallel_threshold`; 0
        forces the pool), mirroring ``run_cells``.
        """
        from repro.core.cohort import record_cohort_run
        from repro.faults.cohort import resolve_cohort_faults
        from repro.fleet.parallel import (
            NodeWork,
            fleet_parallel_threshold,
            resolve_fleet_jobs,
            run_node_work,
        )

        per_node, assigned = self.shard_cohorts(specs)
        work_nodes = [node for node in self.nodes if per_node[node.index]]
        # Fault resolution happens in the parent for both paths: the
        # resolver needs the node's live (Algorithm-1-refined)
        # threshold table, which worker processes do not have.
        fault_targets: dict[int, frozenset] = {}
        for node in work_nodes:
            plan = (fault_plans or {}).get(node.index)
            if plan is not None:
                fault_targets[node.index] = resolve_cohort_faults(
                    plan, tuple(per_node[node.index]), node.server.thresholds
                )

        jobs = resolve_fleet_jobs(jobs)
        threshold = fleet_parallel_threshold() if min_nodes is None else min_nodes
        use_pool = jobs > 1 and work_nodes and len(work_nodes) >= threshold
        mode = "serial"
        workers = 1
        rebuilds = 0
        node_results: list[tuple[int, CohortRunResult]] = []
        if use_pool:
            from concurrent.futures.process import BrokenProcessPool

            from repro.experiments.sweep import (
                _pool_for,
                platform_config_hash,
                shutdown_pool,
            )

            config_hash = platform_config_hash()
            works = [
                NodeWork(
                    index=node.index,
                    seed=node.seed,
                    platform_hash=config_hash,
                    apps=self.config.apps,
                    use_dsm=self.config.use_dsm,
                    replicate_compute_units=self.config.replicate_compute_units,
                    sub_specs=tuple(per_node[node.index]),
                    background=background,
                    vectorized=vectorized,
                    fault_targets=fault_targets.get(node.index),
                    thresholds=node.server.thresholds.copy(),
                    socket_latency_s=node.server.socket_latency_s,
                )
                for node in work_nodes
            ]
            workers = min(jobs, len(works))
            pool = _pool_for(workers)
            try:
                # Collect everything before recording anything: a
                # worker death mid-map must leave the node registries
                # untouched so the serial recovery does not double
                # count.
                outs = list(pool.map(run_node_work, works, chunksize=1))
                mode = "parallel"
                for node, out in zip(work_nodes, outs):
                    record_cohort_run(out.result, server=node.server)
                    rebuilds += int(out.rebuilt)
                    node_results.append((node.index, out.result))
            except BrokenProcessPool:
                # A worker died (OOM kill, signal). Results are
                # deterministic either way, so recover by running the
                # nodes serially rather than failing the fleet run.
                shutdown_pool()
                workers = 1
                node_results = []
        if not node_results:
            for node in work_nodes:
                population = CohortPopulation(
                    per_node[node.index],
                    background=background,
                    server=node.server,
                    fault_targets=fault_targets.get(node.index),
                )
                result = population.run(sim=Simulator(), vectorized=vectorized)
                node_results.append((node.index, result))
        clients = 0
        logical_events = 0
        sim_events = 0
        horizon = 0.0
        for _index, result in node_results:
            clients += result.clients
            logical_events += result.logical_events
            sim_events += result.sim_events
            horizon = max(horizon, result.sim_seconds)
        return FleetCohortResult(
            node_results=node_results,
            clients=clients,
            logical_events=logical_events,
            sim_events=sim_events,
            sim_seconds=horizon,
            assigned_per_node=assigned,
            mode=mode,
            workers=workers,
            worker_rebuilds=rebuilds,
        )
