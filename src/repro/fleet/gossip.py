"""Periodic load gossip across fleet nodes (the stale-load plane).

Every node publishes a :class:`LoadDigest` — a compact summary of its
:meth:`~repro.core.runtime.XarTrekRuntime.load_snapshot` — onto the
:class:`GossipBus` once per ``interval_s`` of simulated time. Remote
placement decisions read the *last published* digest, never the live
snapshot, so the fleet router works on stale load exactly like a
warehouse-scale balancer does ("Instruction Set Migration at Warehouse
Scale" motivates stale-load tolerance as a first-class property).
Staleness is bounded by construction: a digest read at time ``t`` was
published at the latest gossip tick, so ``t - published_at <
interval_s`` once the bus has started (the bus publishes round 0
immediately on :meth:`start`).

The bus ticks on the shared simulated clock via
:class:`repro.sim.PeriodicCall`; it must be :meth:`stop`-ped before a
caller expects ``sim.run()`` to drain the event queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.metrics import MetricsRegistry
from repro.sim import PeriodicCall, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.node import FleetNode

__all__ = ["GossipBus", "GossipError", "LoadDigest"]

#: Histogram buckets for gossip staleness (seconds): sub-tick reads
#: dominate, so the resolution is concentrated below one second.
STALENESS_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Load-score penalty while a node's card is mid-reconfiguration: the
#: FPGA target is effectively unavailable, so remote placement should
#: treat the node as busier than its queue lengths alone say.
RECONFIGURING_PENALTY = 4.0


class GossipError(Exception):
    """Raised for misuse of the gossip bus (reading before round 0)."""


@dataclass(frozen=True)
class LoadDigest:
    """One node's published load summary (what travels on the wire).

    ``x86_active`` / ``arm_active`` are active-job counts from the
    fair-share servers; ``fpga_active`` is in-flight kernel runs, and
    ``fpga_reconfiguring`` flags an in-flight programming pass. All
    values are as of ``published_at`` — consumers must treat them as
    stale.
    """

    node: str
    index: int
    published_at: float
    x86_active: float
    arm_active: float
    fpga_active: float
    fpga_reconfiguring: bool
    #: Backpressure plane (PR 10): the node's admission-queue depth and
    #: brownout rung (0 full, 1 x86-only, 2 shed) as of publication.
    #: Zero for nodes without overload protection, keeping the digest
    #: and the router's behaviour identical to the pre-overload fleet.
    queue_depth: float = 0.0
    brownout: int = 0

    @property
    def score(self) -> float:
        """Scalar placement score: total active work, with a penalty
        while the card is being reprogrammed."""
        score = self.x86_active + self.arm_active + self.fpga_active
        if self.fpga_reconfiguring:
            score += RECONFIGURING_PENALTY
        return score


class GossipBus:
    """The fleet's load-dissemination plane.

    Holds the latest :class:`LoadDigest` per node and republishes all
    of them every ``interval_s`` on the shared simulated clock. The
    router reads digests (stale by up to one interval) and reports the
    observed staleness into ``fleet_gossip_staleness_seconds``.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: "list[FleetNode]",
        interval_s: float,
        metrics: MetricsRegistry,
    ):
        if interval_s <= 0:
            raise GossipError(f"gossip interval must be positive, got {interval_s}")
        self.sim = sim
        self.nodes = list(nodes)
        self.interval_s = float(interval_s)
        self.metrics = metrics
        self._digests: dict[int, LoadDigest] = {}
        self._timer: Optional[PeriodicCall] = None
        self._m_rounds = metrics.counter(
            "fleet_gossip_rounds_total", "gossip publication rounds completed"
        )
        self._m_staleness = metrics.histogram(
            "fleet_gossip_staleness_seconds",
            "age of the load digest behind each remote placement decision",
            buckets=STALENESS_BUCKETS,
        )
        self._m_skew = self.metrics.gauge(
            "fleet_load_skew",
            "max - min node load score at the last gossip round",
        )
        self._m_node_load = metrics.gauge(
            "fleet_node_load",
            "published load score per node (stale between rounds)",
            labelnames=("node",),
        )
        # Gauge children resolved once per node at construction:
        # publish() runs every round over every node, and labels()
        # costs a kwargs dict plus a child lookup per call (the same
        # fix ServerStats applied to its hot counters).
        self._node_load_children = [
            self._m_node_load.labels(node=node.name) for node in self.nodes
        ]
        self._version = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._timer is not None

    @property
    def rounds(self) -> int:
        return int(self._m_rounds.value)

    @property
    def version(self) -> int:
        """Monotone publication counter (bumps once per round).

        Published digests only ever change at a round boundary, so
        consumers may cache values derived from them — the router's
        fleet-floor cache keys on this — and invalidate on a bump.
        """
        return self._version

    def start(self) -> None:
        """Publish round 0 immediately, then tick every interval."""
        if self._timer is not None:
            return
        self.publish()
        self._timer = self.sim.call_every(self.interval_s, self.publish)

    def stop(self) -> None:
        """Cancel the tick so the shared simulator can drain."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- publication -------------------------------------------------------
    def publish(self) -> None:
        """One gossip round: every node's digest becomes the fleet view."""
        scores = []
        for node, load_gauge in zip(self.nodes, self._node_load_children):
            digest = node.digest(self.sim.now)
            self._digests[node.index] = digest
            load_gauge.set(digest.score)
            scores.append(digest.score)
        if scores:
            self._m_skew.set(max(scores) - min(scores))
        self._m_rounds.inc()
        self._version += 1

    # -- the stale read side ------------------------------------------------
    def digest(self, index: int) -> LoadDigest:
        """The last published digest for node ``index`` (stale)."""
        try:
            return self._digests[index]
        except KeyError:
            raise GossipError(
                f"no digest published for node {index}; start() the bus first"
            ) from None

    def digests(self) -> list[LoadDigest]:
        """Last published digests, ordered by node index."""
        return [self.digest(node.index) for node in self.nodes]

    def observe_staleness(self, digest: LoadDigest) -> float:
        """Record (and return) how stale ``digest`` is right now."""
        staleness = self.sim.now - digest.published_at
        self.record_staleness(staleness)
        return staleness

    def record_staleness(self, seconds: float) -> None:
        """Record a staleness observation directly (the cohort shard
        path quantizes assignment times to gossip boundaries itself)."""
        self._m_staleness.observe(seconds)

    def load_skew(self) -> float:
        """max - min published load score (0.0 before round 0)."""
        if not self._digests:
            return 0.0
        scores = [d.score for d in self._digests.values()]
        return max(scores) - min(scores)
