"""Process-parallel fleet cohort execution (the multi-core node path).

Each fleet node's cohort population runs on its own fresh simulator —
the node runs are embarrassingly parallel by construction — so
:meth:`~repro.fleet.deployment.FleetDeployment.run_cohorts` can ship
them to the persistent sweep worker pool
(:func:`repro.experiments.sweep._pool_for`) instead of looping them on
one core. This module holds the picklable halves of that path:

* :class:`NodeWork` — everything one worker needs to reproduce a
  node's cohort run bit for bit: the node's index and platform seed,
  the platform config hash (the runtime-cache key), the sharded
  sub-specs, the resolved fault targets, and — load-bearing — the
  node's *current* :class:`~repro.thresholds.ThresholdTable`. The
  parent ships the live table because Algorithm 1 refines thresholds
  in place during per-client runs; a worker that rebuilt a pristine
  runtime would decide differently than the serial reference.
* :func:`run_node_work` — the worker entry point. Node runtimes are
  cached per worker process, keyed by
  ``(platform hash, node seed, apps, use_dsm, replicate_compute_units)``,
  so repeated ``run_cohorts`` calls amortize compile and build time;
  the shipped threshold table and socket latency override the rebuilt
  runtime's own, and the population runs on a fresh
  :class:`~repro.sim.Simulator` exactly as the serial path does.

Determinism contract: a work unit is a pure function of the parent's
sharding plus the shipped node state, results come back tagged with
their node index and are merged in node-index order, so the parallel
:class:`~repro.fleet.deployment.FleetCohortResult` — including its
checksum ``lines()`` — is byte-identical to serial. The serial path
stays the reference oracle (``tests/fleet/test_parallel.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.core.cohort import CohortPopulation, CohortRunResult, CohortSpec
from repro.experiments.sweep import resolve_jobs
from repro.thresholds import ThresholdTable

__all__ = [
    "FLEET_JOBS_ENV",
    "FLEET_MIN_NODES_ENV",
    "NodeWork",
    "NodeWorkResult",
    "fleet_parallel_threshold",
    "resolve_fleet_jobs",
    "run_node_work",
]

#: Environment variable read by :func:`resolve_fleet_jobs` when no
#: explicit ``jobs`` is given (CI sets it to route the fleet suites
#: through the worker pool).
FLEET_JOBS_ENV = "REPRO_FLEET_JOBS"

#: Environment variable overriding :func:`fleet_parallel_threshold` —
#: the minimum number of non-empty node shards before a multi-job
#: ``run_cohorts`` actually uses the process pool. ``0`` disables the
#: serial fallback (tests use it to force even a 1-node fleet through
#: a worker).
FLEET_MIN_NODES_ENV = "REPRO_FLEET_MIN_NODES"

#: Default pool-worthiness threshold, in non-empty node shards. A
#: single node has nothing to overlap, so the pool only costs pickling
#: and dispatch there.
_MIN_NODES = 2


def resolve_fleet_jobs(jobs: Optional[int | str] = None) -> int:
    """Normalize the fleet ``--jobs`` value (``REPRO_FLEET_JOBS``
    fallback, default serial; 0 or ``"auto"`` means all CPUs)."""
    return resolve_jobs(jobs, env=FLEET_JOBS_ENV)


def fleet_parallel_threshold() -> int:
    """Minimum non-empty node shards for the pool to be worth using.

    Defaults to 2; ``REPRO_FLEET_MIN_NODES`` overrides it outright
    (``0`` disables the serial fallback entirely).
    """
    raw = os.environ.get(FLEET_MIN_NODES_ENV)
    if raw is not None:
        return max(0, int(raw))
    return _MIN_NODES


@dataclass(frozen=True)
class NodeWork:
    """One node's cohort run, packaged for a worker process."""

    index: int
    #: The node's SeedSequence-derived platform seed (part of the
    #: worker-side runtime-cache key).
    seed: int
    #: :func:`~repro.experiments.sweep.platform_config_hash` at ship
    #: time — a testbed recalibration must miss the runtime cache.
    platform_hash: str
    apps: tuple[str, ...]
    use_dsm: bool
    replicate_compute_units: bool
    sub_specs: tuple[CohortSpec, ...]
    background: int
    vectorized: Optional[bool]
    #: Resolved ``(cohort, client, call)`` fault triples for this
    #: node's shard (resolved in the parent, where the fault plan and
    #: the live threshold table are).
    fault_targets: Optional[frozenset]
    #: Snapshot of the node's *current* threshold table. Algorithm 1
    #: mutates thresholds during per-client runs; shipping the live
    #: state (not the compile-time defaults a rebuild would produce)
    #: is what keeps worker decisions identical to serial.
    thresholds: ThresholdTable
    socket_latency_s: float


@dataclass
class NodeWorkResult:
    """What a worker sends back: the run, tagged for ordered merge."""

    index: int
    result: CohortRunResult
    #: Whether this worker had to build the node runtime (False on a
    #: runtime-cache hit — the pool-reuse contract's observable).
    rebuilt: bool


#: Per-worker-process cache of rebuilt node runtimes; lives for the
#: worker's lifetime, which is the pool's lifetime (grow-never-shrink,
#: see ``repro.experiments.sweep``).
_RUNTIME_CACHE: dict = {}


def run_node_work(work: NodeWork) -> NodeWorkResult:
    """Worker entry point: run one node's sharded cohorts.

    Rebuilds (or reuses) the node's runtime for its compile cache and
    metrics spine, installs the shipped threshold table and socket
    latency on the population, and runs on a fresh simulator — the
    exact construction the serial loop performs in the parent.
    """
    from repro.core.runtime import build_system
    from repro.sim import Simulator

    key = (
        work.platform_hash,
        work.seed,
        work.apps,
        work.use_dsm,
        work.replicate_compute_units,
    )
    runtime = _RUNTIME_CACHE.get(key)
    rebuilt = runtime is None
    if rebuilt:
        runtime = build_system(
            work.apps,
            seed=work.seed,
            use_dsm=work.use_dsm,
            replicate_compute_units=work.replicate_compute_units,
        )
        _RUNTIME_CACHE[key] = runtime
    population = CohortPopulation(
        work.sub_specs,
        background=work.background,
        thresholds=work.thresholds,
        server=runtime.server,
        socket_latency_s=work.socket_latency_s,
        fault_targets=work.fault_targets,
    )
    result = population.run(sim=Simulator(), vectorized=work.vectorized)
    return NodeWorkResult(index=work.index, result=result, rebuilt=rebuilt)
