"""Shim for legacy editable installs (offline environments without the
`wheel` package cannot use PEP 660): `pip install -e . --no-use-pep517`."""

from setuptools import setup

setup()
